(* Observability layer: the metrics registry and span tracer, plus the
   regression tests for the bug fixes that landed with it (optimizer
   sweep cap, plan choice ordering, duplicate config keys, unknown
   control-flow signatures, the default pool's at_exit hook). *)

open Fixtures
module Metrics = Opprox_obs.Metrics
module Trace = Opprox_obs.Trace
module Pool = Opprox_util.Pool
module Sexp = Opprox_util.Sexp
module App = Opprox_sim.App
module Schedule = Opprox_sim.Schedule
module Optimizer = Opprox.Optimizer
module Cfmodel = Opprox.Cfmodel
module Runtime = Opprox.Runtime
module Lint_plan = Opprox_analysis.Lint_plan
module Diagnostic = Opprox_analysis.Diagnostic

let counter_value name =
  match Metrics.find name with
  | Some (Metrics.Counter n) -> n
  | Some _ -> Alcotest.failf "%s is registered with the wrong kind" name
  | None -> Alcotest.failf "counter %s is not registered" name

let has_code code = List.exists (fun d -> d.Diagnostic.code = code)

(* Trained once, shared by the optimizer-facing tests. *)
let trained = lazy (Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy)

(* ------------------------------------------------------------- registry *)

let test_counter_gauge_basics () =
  let c = Metrics.counter "test.obs.basic" in
  let before = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 4;
  check_int "counter counts" (before + 5) (Metrics.value c);
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set g 2.5;
  check_float "gauge holds last value" 2.5 (Metrics.gauge_value g);
  Metrics.set g 1.0;
  check_float "gauge moves down" 1.0 (Metrics.gauge_value g);
  check_bool "registration is idempotent" true (c == Metrics.counter "test.obs.basic");
  check_bool "find sees it" true (Metrics.find "test.obs.basic" <> None);
  check_bool "unknown name is None" true (Metrics.find "test.obs.nonesuch" = None)

let test_kind_collision_rejected () =
  let _ = Metrics.counter "test.obs.collide" in
  (match Metrics.gauge "test.obs.collide" with
  | _ -> Alcotest.fail "kind collision accepted"
  | exception Invalid_argument _ -> ());
  let _ = Metrics.histogram ~edges:[| 1.0; 2.0 |] "test.obs.collide_h" in
  match Metrics.histogram ~edges:[| 1.0; 3.0 |] "test.obs.collide_h" with
  | _ -> Alcotest.fail "edge mismatch accepted"
  | exception Invalid_argument _ -> ()

let test_histogram_bucket_edges () =
  let h = Metrics.histogram ~edges:[| 1.0; 2.0; 5.0 |] "test.obs.hist" in
  (* v lands in the first bucket with v <= edge; past the last edge it
     lands in the implicit overflow bucket. *)
  List.iter (Metrics.observe h) [ 1.0; 1.5; 2.0; 5.0; 7.0; 0.25 ];
  let buckets = Metrics.histogram_buckets h in
  check_int "edge buckets plus overflow" 4 (Array.length buckets);
  let counts = Array.map snd buckets in
  check_int "v <= 1 (boundary inclusive)" 2 counts.(0);
  check_int "1 < v <= 2" 2 counts.(1);
  check_int "2 < v <= 5" 1 counts.(2);
  check_int "overflow" 1 counts.(3);
  check_bool "overflow edge is infinite" true (fst buckets.(3) = infinity);
  check_int "count totals observations" 6 (Metrics.histogram_count h);
  check_float "sum accumulates" 16.75 (Metrics.histogram_sum h)

let test_histogram_rejects_bad_edges () =
  match Metrics.histogram ~edges:[| 2.0; 1.0 |] "test.obs.bad_edges" with
  | _ -> Alcotest.fail "non-increasing edges accepted"
  | exception Invalid_argument _ -> ()

let test_exponential_edges () =
  let edges = Metrics.exponential ~start:1.0 4 in
  check_int "length" 4 (Array.length edges);
  check_float "doubles" 8.0 edges.(3)

let prop_parallel_counter_sum =
  (* Increments race from several domains; the atomic counter must lose
     none of them.  The histogram's float sum uses a CAS loop — same
     exactness requirement (the addends are integer-valued, so float
     addition is associative here). *)
  qcheck_case ~count:20 "parallel increments sum exactly"
    QCheck.(pair (int_range 2 4) (int_range 1 200))
    (fun (domains, per) ->
      let c = Metrics.counter "test.obs.parallel" in
      let h = Metrics.histogram ~edges:[| 10.0 |] "test.obs.parallel_h" in
      let c0 = Metrics.value c and n0 = Metrics.histogram_count h in
      let s0 = Metrics.histogram_sum h in
      let workers =
        List.init domains (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per do
                  Metrics.incr c;
                  Metrics.observe h 1.0
                done))
      in
      List.iter Domain.join workers;
      Metrics.value c - c0 = domains * per
      && Metrics.histogram_count h - n0 = domains * per
      && Metrics.histogram_sum h -. s0 = float_of_int (domains * per))

let test_disabled_is_noop () =
  let c = Metrics.counter "test.obs.disabled" in
  let g = Metrics.gauge "test.obs.disabled_g" in
  let h = Metrics.histogram ~edges:[| 1.0 |] "test.obs.disabled_h" in
  Metrics.set g 3.0;
  let v0 = Metrics.value c in
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled true)
    (fun () ->
      Metrics.set_enabled false;
      check_bool "reports disabled" false (Metrics.enabled ());
      Metrics.incr c;
      Metrics.add c 10;
      Metrics.set g 9.0;
      Metrics.observe h 0.5;
      check_int "counter frozen" v0 (Metrics.value c);
      check_float "gauge frozen" 3.0 (Metrics.gauge_value g);
      check_int "histogram frozen" 0 (Metrics.histogram_count h));
  check_bool "re-enabled" true (Metrics.enabled ());
  Metrics.incr c;
  check_int "counts again" (v0 + 1) (Metrics.value c)

let test_dump_is_sorted () =
  let names = List.map fst (Metrics.dump ()) in
  check_bool "dump sorted by name" true (names = List.sort compare names);
  check_bool "pipeline counters registered" true
    (List.mem "driver.exact.run" names && List.mem "optimizer.sweeps" names)

(* --------------------------------------------------------------- tracer *)

(* Minimal JSON syntax checker — enough to guarantee the exported trace
   is loadable, without pulling a JSON dependency into the tests. *)
let json_is_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c = if peek () = Some c then incr pos else raise Exit in
  let literal w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l else raise Exit
  in
  let string_lit () =
    expect '"';
    let rec go () =
      if !pos >= n then raise Exit
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            pos := !pos + 2;
            go ()
        | _ ->
            incr pos;
            go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      incr pos
    done;
    if !pos = start then raise Exit
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> compound '{' '}' (fun () -> string_lit (); skip_ws (); expect ':'; value ())
    | Some '[' -> compound '[' ']' value
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> raise Exit
  and compound opening closing element =
    expect opening;
    skip_ws ();
    if peek () = Some closing then incr pos
    else
      let rec elements () =
        skip_ws ();
        element ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            elements ()
        | Some c when c = closing -> incr pos
        | _ -> raise Exit
      in
      elements ()
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | complete -> complete
  | exception Exit -> false

let with_tracing f =
  Trace.set_enabled true;
  Trace.clear ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ())
    f

let test_trace_disabled_is_noop () =
  check_bool "off by default" false (Trace.enabled ());
  let before = Trace.event_count () in
  let r = Trace.with_span "invisible" (fun () -> 41 + 1) in
  check_int "value passes through" 42 r;
  Trace.instant "also invisible";
  check_int "nothing recorded" before (Trace.event_count ())

let test_trace_records_and_exports () =
  with_tracing (fun () ->
      let r =
        Trace.with_span ~cat:"test" "outer" (fun () ->
            Trace.with_span ~cat:"test" "inner" (fun () -> ());
            Trace.instant "marker";
            7)
      in
      check_int "span returns the body's value" 7 r;
      check_int "two spans and a marker" 3 (Trace.event_count ());
      let json = Trace.to_json () in
      check_bool "export is valid JSON" true (json_is_valid json);
      check_bool "events array present" true
        (String.length json > 0
        &&
        let re_sub needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
          at 0
        in
        re_sub "\"traceEvents\"" json && re_sub "\"outer\"" json && re_sub "\"inner\"" json))

let test_trace_escapes_names () =
  with_tracing (fun () ->
      Trace.instant "quote\" slash\\ newline\n tab\t";
      check_bool "escaped name still valid JSON" true (json_is_valid (Trace.to_json ())))

let test_trace_records_on_raise () =
  with_tracing (fun () ->
      (match Trace.with_span "raises" (fun () -> failwith "boom") with
      | () -> Alcotest.fail "exception swallowed"
      | exception Failure _ -> ());
      check_int "span recorded despite the raise" 1 (Trace.event_count ()))

(* -------------------------------------------------- bugfix: sweep bound *)

let test_optimizer_sweeps_bounded () =
  (* The per-budget sweep loop settles in at most 5 sweeps and no longer
     burns a discarded 6th; [optimizer.sweeps] pins the count. *)
  let tr = Lazy.force trained in
  List.iter
    (fun budget ->
      let s0 = counter_value "optimizer.sweeps" in
      let v0 = counter_value "optimizer.solves" in
      let _plan = Opprox.optimize tr ~budget in
      let sweeps = counter_value "optimizer.sweeps" - s0 in
      check_int "one solve" 1 (counter_value "optimizer.solves" - v0);
      check_bool
        (Printf.sprintf "budget %.1f: %d sweeps within [1, 5]" budget sweeps)
        true
        (sweeps >= 1 && sweeps <= 5))
    [ 0.0; 2.0; 8.0; 25.0 ]

(* ------------------------------------------------ bugfix: choice order *)

let test_plan_choices_in_phase_order () =
  let tr = Lazy.force trained in
  let plan = Opprox.optimize tr ~budget:10.0 in
  let phases = List.map (fun (c : Optimizer.phase_choice) -> c.phase) plan.Optimizer.choices in
  check_bool "one choice per phase, in phase order" true
    (phases = List.init (Schedule.n_phases plan.Optimizer.schedule) Fun.id)

let test_plan_lint_rejects_misordered_choices () =
  let choice phase =
    { Lint_plan.phase; levels = [| 1; 0 |]; sub_budget = 0.5; qos_hi = 0.0 }
  in
  let view choices =
    {
      Lint_plan.app_name = "toy";
      abs = toy_abs;
      n_phases = 2;
      budget = 2.0;
      choices;
      schedule = Schedule.make [| [| 1; 0 |]; [| 1; 0 |] |];
    }
  in
  check_bool "in-order plan passes PLAN008" false
    (has_code "PLAN008" (Lint_plan.check_plan (view [ choice 0; choice 1 ])));
  check_bool "reversed choices rejected" true
    (has_code "PLAN008" (Lint_plan.check_plan (view [ choice 1; choice 0 ])));
  check_bool "duplicated phase rejected" true
    (has_code "PLAN008" (Lint_plan.check_plan (view [ choice 0; choice 0 ])))

(* -------------------------------------------- bugfix: duplicate config *)

let test_config_duplicate_key_counted () =
  let d0 = counter_value "runtime.config.dup_key" in
  let job =
    Runtime.parse_config "app = toy\nbudget = 5\nmodels = m.sexp\nbudget = 7.5\n"
  in
  check_float "last binding wins" 7.5 job.Runtime.budget;
  check_int "duplicate counted" (d0 + 1) (counter_value "runtime.config.dup_key");
  let job = Runtime.parse_config "app = toy\nbudget = 5\nmodels = m.sexp\n" in
  check_float "clean config unaffected" 5.0 job.Runtime.budget;
  check_int "no false positives" (d0 + 1) (counter_value "runtime.config.dup_key")

let test_load_config_closes_channel () =
  (* Parse failures must not leak the channel: the file stays removable
     (and on repeated failures, the fd table stays bounded). *)
  let path = Filename.temp_file "opprox_obs" ".conf" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "app toy without equals\n";
      close_out oc;
      for _ = 1 to 64 do
        match Runtime.load_config path with
        | _ -> Alcotest.fail "malformed config accepted"
        | exception Failure _ -> ()
      done)

(* --------------------------------------- bugfix: unknown cf signatures *)

let test_cfmodel_unknown_signature_counted () =
  let m = Cfmodel.build flow ~inputs:flow.App.training_inputs in
  let seen = (Opprox_sim.Driver.run_exact flow flow.App.default_input).trace in
  let u0 = counter_value "cfmodel.unknown_signature" in
  check_int "known signature resolves silently" (Cfmodel.class_of_trace m seen)
    (Cfmodel.class_of_trace m seen);
  check_int "no count for known traces" u0 (counter_value "cfmodel.unknown_signature");
  let unknown = List.init Cfmodel.signature_length (fun i -> 900 + i) in
  check_int "unseen signature falls back to class 0" 0 (Cfmodel.class_of_trace m unknown);
  check_int "fallback counted" (u0 + 1) (counter_value "cfmodel.unknown_signature")

let test_cfmodel_of_sexp_rejects_inconsistent_n_classes () =
  let m = Cfmodel.build flow ~inputs:flow.App.training_inputs in
  let sexp = Cfmodel.to_sexp m in
  let reloaded = Cfmodel.of_sexp sexp in
  check_int "faithful roundtrip" (Cfmodel.n_classes m) (Cfmodel.n_classes reloaded);
  let doctored =
    Sexp.record
      [
        ("classes", Sexp.field sexp "classes");
        ("tree", Sexp.field sexp "tree");
        ("accuracy", Sexp.field sexp "accuracy");
        ("n_classes", Sexp.int (Cfmodel.n_classes m + 1));
      ]
  in
  match Cfmodel.of_sexp doctored with
  | _ -> Alcotest.fail "inconsistent n_classes accepted"
  | exception Failure _ -> ()

(* ------------------------------------------- bugfix: pool at_exit hook *)

let test_default_pool_at_exit_registered_once () =
  Pool.set_default_jobs 1;
  let after_first = counter_value "pool.default.at_exit_registrations" in
  check_int "one process-wide hook" 1 after_first;
  Pool.set_default_jobs 1;
  Pool.set_default_jobs 2;
  check_int "resizing registers no further hooks" after_first
    (counter_value "pool.default.at_exit_registrations")

let test_pool_task_accounting () =
  let t0 = counter_value "pool.tasks" in
  let pool = Pool.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let out = Pool.parallel_map ~pool ~chunk:1 (fun x -> x * x) (Array.init 8 Fun.id) in
      check_int "map still correct" 140 (Array.fold_left ( + ) 0 out));
  check_int "every chunk counted as a task" (t0 + 8) (counter_value "pool.tasks")

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter and gauge basics" `Quick test_counter_gauge_basics;
        Alcotest.test_case "kind collisions rejected" `Quick test_kind_collision_rejected;
        Alcotest.test_case "histogram bucket edges" `Quick test_histogram_bucket_edges;
        Alcotest.test_case "histogram rejects bad edges" `Quick test_histogram_rejects_bad_edges;
        Alcotest.test_case "exponential edge builder" `Quick test_exponential_edges;
        prop_parallel_counter_sum;
        Alcotest.test_case "disabled metrics are no-ops" `Quick test_disabled_is_noop;
        Alcotest.test_case "dump is sorted and populated" `Quick test_dump_is_sorted;
        Alcotest.test_case "disabled tracing is a no-op" `Quick test_trace_disabled_is_noop;
        Alcotest.test_case "trace records and exports JSON" `Quick test_trace_records_and_exports;
        Alcotest.test_case "trace escapes span names" `Quick test_trace_escapes_names;
        Alcotest.test_case "span recorded when body raises" `Quick test_trace_records_on_raise;
        Alcotest.test_case "optimizer sweeps bounded" `Quick test_optimizer_sweeps_bounded;
        Alcotest.test_case "plan choices in phase order" `Quick test_plan_choices_in_phase_order;
        Alcotest.test_case "PLAN008 rejects misordered choices" `Quick
          test_plan_lint_rejects_misordered_choices;
        Alcotest.test_case "duplicate config keys counted" `Quick test_config_duplicate_key_counted;
        Alcotest.test_case "load_config closes the channel" `Quick test_load_config_closes_channel;
        Alcotest.test_case "unknown cf signature counted" `Quick
          test_cfmodel_unknown_signature_counted;
        Alcotest.test_case "of_sexp rejects bad n_classes" `Quick
          test_cfmodel_of_sexp_rejects_inconsistent_n_classes;
        Alcotest.test_case "at_exit hook registered once" `Quick
          test_default_pool_at_exit_registered_once;
        Alcotest.test_case "pool task accounting" `Quick test_pool_task_accounting;
      ] );
  ]
