(* Tests for the domain-parallel execution engine (Opprox_util.Pool) and
   its integration into Training.collect / Oracle.measured_space:
   determinism across domain counts, exception propagation, and the
   one-exact-run-per-input guarantee. *)

module Pool = Opprox_util.Pool
module Rng = Opprox_util.Rng
module Driver = Opprox_sim.Driver
module Training = Opprox.Training
module Oracle = Opprox.Oracle
open Fixtures

(* Pools of 1..4 domains, shared across the cases below and joined by the
   final "shutdown" case. *)
let pools = lazy (Array.init 4 (fun i -> Pool.create ~jobs:(i + 1) ()))
let pool_of_jobs jobs = (Lazy.force pools).(jobs - 1)

(* ------------------------------------------------------------ determinism *)

let prop_map_matches_sequential =
  qcheck_case "parallel_map f = Array.map f (any jobs, any chunk)"
    QCheck.(triple (array small_int) (int_range 1 7) (int_range 1 4))
    (fun (arr, chunk, jobs) ->
      let f x = (x * 31) lxor (x asr 3) in
      Pool.parallel_map ~pool:(pool_of_jobs jobs) ~chunk f arr = Array.map f arr)

let prop_mapi_preserves_indices =
  qcheck_case "parallel_mapi sees the right index"
    QCheck.(pair (array small_int) (int_range 1 4))
    (fun (arr, jobs) ->
      let f i x = (i, x) in
      Pool.parallel_mapi ~pool:(pool_of_jobs jobs) ~chunk:2 f arr = Array.mapi f arr)

let prop_seeded_map_bit_identical =
  qcheck_case "parallel_map_seeded is a function of (seed, index) only"
    QCheck.(pair small_int (int_range 1 16))
    (fun (seed, n) ->
      let input = Array.init n (fun i -> i) in
      let f ~rng x = float_of_int x +. Rng.uniform rng +. Rng.uniform rng in
      let runs =
        List.map
          (fun jobs -> Pool.parallel_map_seeded ~pool:(pool_of_jobs jobs) ~seed f input)
          [ 1; 2; 4 ]
      in
      match runs with
      | [ a; b; c ] -> a = b && b = c
      | _ -> false)

let test_parallel_iter_visits_all () =
  let n = 257 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Pool.parallel_iter ~pool:(pool_of_jobs 4) ~chunk:3 (fun i -> Atomic.incr hits.(i))
    (Array.init n (fun i -> i));
  Array.iteri (fun i a -> check_int (Printf.sprintf "slot %d hit once" i) 1 (Atomic.get a)) hits

let test_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_map ~pool:(pool_of_jobs 4) succ [||]);
  Alcotest.(check (array int)) "singleton" [| 8 |]
    (Pool.parallel_map ~pool:(pool_of_jobs 4) succ [| 7 |])

(* ------------------------------------------------------------- exceptions *)

let test_exception_propagates () =
  Alcotest.check_raises "first failure re-raised" (Failure "boom") (fun () ->
      ignore
        (Pool.parallel_map ~pool:(pool_of_jobs 4) ~chunk:2
           (fun i -> if i = 17 then failwith "boom" else i)
           (Array.init 64 (fun i -> i))))

let test_exception_leaves_pool_usable () =
  let pool = pool_of_jobs 3 in
  (try ignore (Pool.parallel_map ~pool (fun _ -> failwith "dead") (Array.init 8 (fun i -> i)))
   with Failure _ -> ());
  Alcotest.(check (array int)) "pool still maps" [| 2; 4; 6 |]
    (Pool.parallel_map ~pool (fun x -> 2 * x) [| 1; 2; 3 |])

let test_invalid_arguments () =
  Alcotest.check_raises "chunk 0" (Invalid_argument "Pool.parallel_map: chunk must be >= 1")
    (fun () ->
      ignore (Pool.parallel_map ~pool:(pool_of_jobs 2) ~chunk:0 succ (Array.init 4 (fun i -> i))));
  Alcotest.check_raises "jobs 0" (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

(* ------------------------------------------------------------ env override *)

let test_env_override () =
  Unix.putenv "OPPROX_JOBS" "3";
  check_int "OPPROX_JOBS wins" 3 (Pool.default_jobs ());
  Unix.putenv "OPPROX_JOBS" "not-a-number";
  check_bool "garbage falls back to detection" true (Pool.default_jobs () >= 1);
  Unix.putenv "OPPROX_JOBS" ""

(* ------------------------------------------- Training.collect integration *)

let training_config = { Training.default_config with joint_samples_per_phase = 6 }

let test_training_parallel_equals_sequential () =
  let collect jobs =
    Driver.clear_cache ();
    Training.collect ~config:training_config ~pool:(pool_of_jobs jobs) toy ~n_phases:2
  in
  let seq = collect 1 and par = collect 4 in
  check_int "same run count" (Training.n_runs seq) (Training.n_runs par);
  Array.iteri
    (fun i (a : Training.sample) ->
      let b = par.Training.samples.(i) in
      Alcotest.(check (array (float 0.0))) "same input" a.input b.input;
      check_int "same phase" a.phase b.phase;
      Alcotest.(check (array int)) "same levels" a.levels b.levels;
      check_float "same qos" a.qos b.qos;
      check_float "same speedup" a.speedup b.speedup;
      check_float "same iters ratio" a.iters_ratio b.iters_ratio;
      check_int "same trace class" a.trace_class b.trace_class)
    seq.Training.samples

let test_training_one_exact_run_per_input () =
  Driver.clear_cache ();
  Driver.reset_exact_run_count ();
  let t = Training.collect ~config:training_config ~pool:(pool_of_jobs 4) toy ~n_phases:2 in
  check_bool "collected something" true (Training.n_runs t > 0);
  (* The hoisted baseline plus the memo table mean the golden configuration
     executed exactly once per training input, not once per sample. *)
  check_int "one exact execution per input" (Array.length toy.Opprox_sim.App.training_inputs)
    (Driver.exact_run_count ())

(* --------------------------------------------------- Oracle integration *)

let test_oracle_parallel_equals_sequential () =
  let space jobs =
    Oracle.clear_cache ();
    Driver.clear_cache ();
    Oracle.measured_space ~pool:(pool_of_jobs jobs) toy ~input:toy.Opprox_sim.App.default_input
  in
  let seq = space 1 and par = space 4 in
  check_int "same size" (List.length seq) (List.length par);
  List.iter2
    (fun (la, (ea : Driver.evaluation)) (lb, (eb : Driver.evaluation)) ->
      Alcotest.(check (array int)) "same enumeration order" la lb;
      check_float "same qos" ea.qos_degradation eb.qos_degradation;
      check_float "same speedup" ea.speedup eb.speedup)
    seq par

let test_oracle_cache_hit_skips_reruns () =
  Oracle.clear_cache ();
  Driver.clear_cache ();
  let input = toy.Opprox_sim.App.default_input in
  let a = Oracle.measured_space ~pool:(pool_of_jobs 2) toy ~input in
  Driver.reset_exact_run_count ();
  let b = Oracle.measured_space ~pool:(pool_of_jobs 2) toy ~input in
  check_int "memo hit: no new exact runs" 0 (Driver.exact_run_count ());
  check_bool "same list" true (a == b)

(* --------------------------------------------------------------- cleanup *)

let test_shutdown () =
  Array.iter Pool.shutdown (Lazy.force pools);
  (* A shut-down pool degrades to sequential execution instead of hanging. *)
  Alcotest.(check (array int)) "sequential fallback" [| 1; 4; 9 |]
    (Pool.parallel_map ~pool:(pool_of_jobs 4) (fun x -> x * x) [| 1; 2; 3 |])

let suite =
  [
    ( "pool",
      [
        prop_map_matches_sequential;
        prop_mapi_preserves_indices;
        prop_seeded_map_bit_identical;
        Alcotest.test_case "iter visits all" `Quick test_parallel_iter_visits_all;
        Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
        Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        Alcotest.test_case "pool survives exceptions" `Quick test_exception_leaves_pool_usable;
        Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
        Alcotest.test_case "OPPROX_JOBS override" `Quick test_env_override;
        Alcotest.test_case "training parallel = sequential" `Quick
          test_training_parallel_equals_sequential;
        Alcotest.test_case "one exact run per input" `Quick test_training_one_exact_run_per_input;
        Alcotest.test_case "oracle parallel = sequential" `Quick
          test_oracle_parallel_equals_sequential;
        Alcotest.test_case "oracle memo is domain-safe" `Quick test_oracle_cache_hit_skips_reruns;
        Alcotest.test_case "shutdown" `Quick test_shutdown;
      ] );
  ]
