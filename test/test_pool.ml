(* Tests for the work-stealing execution engine (Opprox_util.Pool) and
   its integration into Training.collect / Oracle.measured_space:
   determinism across domain counts, exception propagation across
   domains (including stolen tasks), nested-submission liveness, the
   one-exact-run-per-input guarantee, and equivalence of the sharded
   driver memos with a single-table configuration. *)

module Pool = Opprox_util.Pool
module Rng = Opprox_util.Rng
module Metrics = Opprox_obs.Metrics
module Driver = Opprox_sim.Driver
module Training = Opprox.Training
module Oracle = Opprox.Oracle
open Fixtures

(* Pools at every job count the determinism properties quantify over,
   shared across the cases below and joined by the final "shutdown"
   case.  [~active:jobs] lifts the active-worker cap so real concurrent
   stealing happens even on a single-core CI host (the cap exists for
   throughput, not correctness — these tests exercise the uncapped
   worst case). *)
let jobs_levels = [ 1; 2; 4; 8 ]
let pools = lazy (List.map (fun j -> (j, Pool.create ~jobs:j ~active:j ())) jobs_levels)
let pool_of_jobs jobs = List.assoc jobs (Lazy.force pools)

(* ------------------------------------------------------------ determinism *)

let prop_map_matches_sequential =
  qcheck_case "parallel_map f = Array.map f (any jobs, any chunk)"
    QCheck.(triple (array small_int) (int_range 1 7) (oneofl jobs_levels))
    (fun (arr, chunk, jobs) ->
      let f x = (x * 31) lxor (x asr 3) in
      Pool.parallel_map ~pool:(pool_of_jobs jobs) ~chunk f arr = Array.map f arr)

let prop_map_matches_sequential_adaptive =
  qcheck_case "parallel_map f = Array.map f (adaptive splitting, any grain)"
    QCheck.(triple (array small_int) (int_range 1 7) (oneofl jobs_levels))
    (fun (arr, grain, jobs) ->
      let f x = (x * 31) lxor (x asr 3) in
      Pool.parallel_map ~pool:(pool_of_jobs jobs) ~grain f arr = Array.map f arr)

let prop_mapi_preserves_indices =
  qcheck_case "parallel_mapi sees the right index"
    QCheck.(pair (array small_int) (oneofl jobs_levels))
    (fun (arr, jobs) ->
      let f i x = (i, x) in
      Pool.parallel_mapi ~pool:(pool_of_jobs jobs) ~chunk:2 f arr = Array.mapi f arr)

let prop_seeded_map_bit_identical =
  qcheck_case "parallel_map_seeded is a function of (seed, index) only"
    QCheck.(pair small_int (int_range 1 16))
    (fun (seed, n) ->
      let input = Array.init n (fun i -> i) in
      let f ~rng x = float_of_int x +. Rng.uniform rng +. Rng.uniform rng in
      let runs =
        List.map
          (fun jobs -> Pool.parallel_map_seeded ~pool:(pool_of_jobs jobs) ~seed f input)
          jobs_levels
      in
      List.for_all (fun r -> r = List.hd runs) runs)

let test_parallel_iter_visits_all () =
  let n = 257 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Pool.parallel_iter ~pool:(pool_of_jobs 4) ~chunk:3 (fun i -> Atomic.incr hits.(i))
    (Array.init n (fun i -> i));
  Array.iteri (fun i a -> check_int (Printf.sprintf "slot %d hit once" i) 1 (Atomic.get a)) hits

let test_parallel_iter_visits_all_adaptive () =
  let n = 257 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Pool.parallel_iter ~pool:(pool_of_jobs 8) (fun i -> Atomic.incr hits.(i))
    (Array.init n (fun i -> i));
  Array.iteri
    (fun i a -> check_int (Printf.sprintf "adaptive slot %d hit once" i) 1 (Atomic.get a))
    hits

let test_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_map ~pool:(pool_of_jobs 4) succ [||]);
  Alcotest.(check (array int)) "singleton" [| 8 |]
    (Pool.parallel_map ~pool:(pool_of_jobs 4) succ [| 7 |])

(* ---------------------------------------------------- forced concurrency *)

(* Two tasks that handshake through atomics can only both finish if they
   run on different domains at the same time — proving the engine really
   distributes work instead of draining it on the submitter. *)
let test_two_domains_run_concurrently () =
  let a_started = Atomic.make false and b_seen = Atomic.make false in
  Pool.parallel_iter ~pool:(pool_of_jobs 2) ~chunk:1
    (fun which ->
      if which = 0 then begin
        Atomic.set a_started true;
        while not (Atomic.get b_seen) do
          Domain.cpu_relax ()
        done
      end
      else begin
        while not (Atomic.get a_started) do
          Domain.cpu_relax ()
        done;
        Atomic.set b_seen true
      end)
    [| 0; 1 |];
  check_bool "both tasks overlapped in time" true (Atomic.get a_started && Atomic.get b_seen)

(* ------------------------------------------------------------- exceptions *)

let test_exception_propagates () =
  Alcotest.check_raises "first failure re-raised" (Failure "boom") (fun () ->
      ignore
        (Pool.parallel_map ~pool:(pool_of_jobs 4) ~chunk:2
           (fun i -> if i = 17 then failwith "boom" else i)
           (Array.init 64 (fun i -> i))))

let test_exception_propagates_adaptive () =
  Alcotest.check_raises "adaptive split re-raises" (Failure "boom") (fun () ->
      ignore
        (Pool.parallel_map ~pool:(pool_of_jobs 8)
           (fun i -> if i = 17 then failwith "boom" else i)
           (Array.init 64 (fun i -> i))))

(* The raising task provably runs on a different domain than its sibling
   (same handshake as above), so the exception crosses a steal boundary
   before reaching the caller. *)
let test_exception_from_stolen_task () =
  let started = Atomic.make false in
  Alcotest.check_raises "exception crosses domains" (Failure "stolen-boom") (fun () ->
      Pool.parallel_iter ~pool:(pool_of_jobs 2) ~chunk:1
        (fun which ->
          if which = 0 then begin
            Atomic.set started true;
            while Atomic.get started do
              Domain.cpu_relax ()
            done
          end
          else begin
            while not (Atomic.get started) do
              Domain.cpu_relax ()
            done;
            Atomic.set started false;
            failwith "stolen-boom"
          end)
        [| 0; 1 |])

let test_exception_leaves_pool_usable () =
  let pool = pool_of_jobs 4 in
  (try ignore (Pool.parallel_map ~pool (fun _ -> failwith "dead") (Array.init 8 (fun i -> i)))
   with Failure _ -> ());
  Alcotest.(check (array int)) "pool still maps" [| 2; 4; 6 |]
    (Pool.parallel_map ~pool (fun x -> 2 * x) [| 1; 2; 3 |])

(* --------------------------------------------------- nested submissions *)

(* A task that itself calls [parallel_map] on the same pool must stay
   live: the inner batch's ranges go onto the worker's own deque and the
   worker helps until they settle, so no configuration of waiting
   domains can deadlock. *)
let test_nested_submission_liveness () =
  let pool = pool_of_jobs 4 in
  let outer = Array.init 6 (fun i -> i) in
  let expected =
    Array.map (fun i -> Array.fold_left ( + ) 0 (Array.init 32 (fun j -> (i * 100) + j))) outer
  in
  let got =
    Pool.parallel_map ~pool
      (fun i ->
        let inner =
          Pool.parallel_map ~pool ~grain:4 (fun j -> (i * 100) + j) (Array.init 32 (fun j -> j))
        in
        Array.fold_left ( + ) 0 inner)
      outer
  in
  Alcotest.(check (array int)) "nested maps agree" expected got

let test_invalid_arguments () =
  Alcotest.check_raises "chunk 0" (Invalid_argument "Pool.parallel_map: chunk must be >= 1")
    (fun () ->
      ignore (Pool.parallel_map ~pool:(pool_of_jobs 2) ~chunk:0 succ (Array.init 4 (fun i -> i))));
  Alcotest.check_raises "grain 0" (Invalid_argument "Pool.parallel_map: grain must be >= 1")
    (fun () ->
      ignore (Pool.parallel_map ~pool:(pool_of_jobs 2) ~grain:0 succ (Array.init 4 (fun i -> i))));
  Alcotest.check_raises "jobs 0" (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()));
  Alcotest.check_raises "active 0" (Invalid_argument "Pool.create: active must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:2 ~active:0 ()))

let test_active_cap_clamped () =
  let p = Pool.create ~jobs:2 ~active:16 () in
  check_int "active cap clamped to jobs" 2 (Pool.active_cap p);
  Alcotest.(check (array int)) "capped pool maps" [| 2; 3 |]
    (Pool.parallel_map ~pool:p succ [| 1; 2 |]);
  Pool.shutdown p

(* ------------------------------------------------------------ env override *)

let test_env_override () =
  Unix.putenv "OPPROX_JOBS" "3";
  check_int "OPPROX_JOBS wins" 3 (Pool.default_jobs ());
  Unix.putenv "OPPROX_JOBS" "not-a-number";
  check_bool "garbage falls back to detection" true (Pool.default_jobs () >= 1);
  Unix.putenv "OPPROX_JOBS" ""

let test_bad_jobs_observable () =
  let c = Metrics.counter "pool.env.bad_jobs" in
  let before = Metrics.value c in
  Unix.putenv "OPPROX_JOBS" "banana";
  ignore (Pool.default_jobs ());
  check_int "malformed value counted once" (before + 1) (Metrics.value c);
  Unix.putenv "OPPROX_JOBS" " 7 ";
  check_int "whitespace-padded value parses" 7 (Pool.default_jobs ());
  check_int "well-formed value not counted" (before + 1) (Metrics.value c);
  Unix.putenv "OPPROX_JOBS" "";
  ignore (Pool.default_jobs ());
  check_int "empty value treated as unset, not counted" (before + 1) (Metrics.value c)

(* ------------------------------------------- Training.collect integration *)

let training_config = { Training.default_config with joint_samples_per_phase = 6 }

let same_dataset label (a : Training.t) (b : Training.t) =
  check_int (label ^ ": same run count") (Training.n_runs a) (Training.n_runs b);
  Array.iteri
    (fun i (sa : Training.sample) ->
      let sb = b.Training.samples.(i) in
      Alcotest.(check (array (float 0.0))) (label ^ ": same input") sa.input sb.input;
      check_int (label ^ ": same phase") sa.phase sb.phase;
      Alcotest.(check (array int)) (label ^ ": same levels") sa.levels sb.levels;
      check_float (label ^ ": same qos") sa.qos sb.qos;
      check_float (label ^ ": same speedup") sa.speedup sb.speedup;
      check_float (label ^ ": same iters ratio") sa.iters_ratio sb.iters_ratio;
      check_int (label ^ ": same trace class") sa.trace_class sb.trace_class)
    a.Training.samples

let test_training_parallel_equals_sequential () =
  let collect jobs =
    Driver.clear_cache ();
    Training.collect ~config:training_config ~pool:(pool_of_jobs jobs) toy ~n_phases:2
  in
  let seq = collect 1 in
  List.iter
    (fun jobs -> same_dataset (Printf.sprintf "j%d" jobs) seq (collect jobs))
    [ 2; 4; 8 ]

let test_training_one_exact_run_per_input () =
  Driver.clear_cache ();
  Driver.reset_exact_run_count ();
  let t = Training.collect ~config:training_config ~pool:(pool_of_jobs 4) toy ~n_phases:2 in
  check_bool "collected something" true (Training.n_runs t > 0);
  (* The hoisted baseline plus the memo table mean the golden configuration
     executed exactly once per training input, not once per sample. *)
  check_int "one exact execution per input" (Array.length toy.Opprox_sim.App.training_inputs)
    (Driver.exact_run_count ())

(* --------------------------------------------------- Oracle integration *)

let test_oracle_parallel_equals_sequential () =
  let space jobs =
    Oracle.clear_cache ();
    Driver.clear_cache ();
    Oracle.measured_space ~pool:(pool_of_jobs jobs) toy ~input:toy.Opprox_sim.App.default_input
  in
  let seq = space 1 in
  List.iter
    (fun jobs ->
      let par = space jobs in
      check_int "same size" (List.length seq) (List.length par);
      List.iter2
        (fun (la, (ea : Driver.evaluation)) (lb, (eb : Driver.evaluation)) ->
          Alcotest.(check (array int)) "same enumeration order" la lb;
          check_float "same qos" ea.qos_degradation eb.qos_degradation;
          check_float "same speedup" ea.speedup eb.speedup)
        seq par)
    [ 2; 4; 8 ]

let test_oracle_cache_hit_skips_reruns () =
  Oracle.clear_cache ();
  Driver.clear_cache ();
  let input = toy.Opprox_sim.App.default_input in
  let a = Oracle.measured_space ~pool:(pool_of_jobs 2) toy ~input in
  Driver.reset_exact_run_count ();
  let b = Oracle.measured_space ~pool:(pool_of_jobs 2) toy ~input in
  check_int "memo hit: no new exact runs" 0 (Driver.exact_run_count ());
  check_bool "same list" true (a == b)

(* ------------------------------------------------------- memo sharding *)

(* The sharded driver memos must be observationally identical to a
   single-table configuration: same dataset bit-for-bit and the same
   hit/miss/save totals, whatever the parallelism. *)
let test_sharded_memo_equals_single_table () =
  let run shards =
    Driver.set_memo_shards shards;
    Oracle.clear_cache ();
    Driver.reset_cache_stats ();
    Driver.reset_exact_run_count ();
    let t = Training.collect ~config:training_config ~pool:(pool_of_jobs 4) toy ~n_phases:2 in
    let e = Driver.exact_cache_stats ()
    and c = Driver.checkpoint_stats ()
    and v = Driver.eval_cache_stats () in
    ( t,
      (e.Driver.hits, e.Driver.misses),
      (c.Driver.hits, c.Driver.misses),
      (v.Driver.hits, v.Driver.misses),
      Driver.checkpoint_save_count () )
  in
  Fun.protect
    ~finally:(fun () -> Driver.set_memo_shards 16)
    (fun () ->
      check_int "default shard count" 16 (Driver.memo_shards ());
      let t1, e1, c1, v1, s1 = run 1 in
      check_int "shard count applied" 1 (Driver.memo_shards ());
      let tn, en, cn, vn, sn = run 16 in
      same_dataset "1 shard vs 16" t1 tn;
      check_int "same exact hits" (fst e1) (fst en);
      check_int "same exact misses" (snd e1) (snd en);
      check_int "same checkpoint hits" (fst c1) (fst cn);
      check_int "same checkpoint misses" (snd c1) (snd cn);
      check_int "same eval hits" (fst v1) (fst vn);
      check_int "same eval misses" (snd v1) (snd vn);
      check_int "same checkpoint saves" s1 sn);
  Alcotest.check_raises "shards 0" (Invalid_argument "Driver.set_memo_shards: shards must be >= 1")
    (fun () -> Driver.set_memo_shards 0)

(* --------------------------------------------------------------- cleanup *)

let test_shutdown () =
  List.iter (fun (_, p) -> Pool.shutdown p) (Lazy.force pools);
  (* A shut-down pool degrades to sequential execution instead of hanging. *)
  Alcotest.(check (array int)) "sequential fallback" [| 1; 4; 9 |]
    (Pool.parallel_map ~pool:(pool_of_jobs 4) (fun x -> x * x) [| 1; 2; 3 |])

let suite =
  [
    ( "pool",
      [
        prop_map_matches_sequential;
        prop_map_matches_sequential_adaptive;
        prop_mapi_preserves_indices;
        prop_seeded_map_bit_identical;
        Alcotest.test_case "iter visits all" `Quick test_parallel_iter_visits_all;
        Alcotest.test_case "iter visits all (adaptive)" `Quick
          test_parallel_iter_visits_all_adaptive;
        Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
        Alcotest.test_case "two domains run concurrently" `Quick
          test_two_domains_run_concurrently;
        Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        Alcotest.test_case "exception propagates (adaptive)" `Quick
          test_exception_propagates_adaptive;
        Alcotest.test_case "exception from stolen task" `Quick test_exception_from_stolen_task;
        Alcotest.test_case "pool survives exceptions" `Quick test_exception_leaves_pool_usable;
        Alcotest.test_case "nested submission liveness" `Quick test_nested_submission_liveness;
        Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
        Alcotest.test_case "active cap clamped" `Quick test_active_cap_clamped;
        Alcotest.test_case "OPPROX_JOBS override" `Quick test_env_override;
        Alcotest.test_case "bad OPPROX_JOBS is observable" `Quick test_bad_jobs_observable;
        Alcotest.test_case "training parallel = sequential" `Quick
          test_training_parallel_equals_sequential;
        Alcotest.test_case "one exact run per input" `Quick test_training_one_exact_run_per_input;
        Alcotest.test_case "oracle parallel = sequential" `Quick
          test_oracle_parallel_equals_sequential;
        Alcotest.test_case "oracle memo is domain-safe" `Quick test_oracle_cache_hit_skips_reruns;
        Alcotest.test_case "sharded memos = single table" `Quick
          test_sharded_memo_equals_single_table;
        Alcotest.test_case "shutdown" `Quick test_shutdown;
      ] );
  ]
