(* Tests for the runtime job-submission layer (config parsing, env-var
   encoding, end-to-end submit). *)

module Runtime = Opprox.Runtime
module Schedule = Opprox_sim.Schedule
module App = Opprox_sim.App
open Fixtures

let test_parse_minimal () =
  let job = Runtime.parse_config "app = toy\nbudget = 12.5\nmodels = /tmp/m.scm\n" in
  Alcotest.(check string) "app" "toy" job.Runtime.app_name;
  check_float "budget" 12.5 job.Runtime.budget;
  Alcotest.(check string) "models" "/tmp/m.scm" job.Runtime.model_path;
  check_bool "no input" true (job.Runtime.input = None)

let test_parse_with_input_and_comments () =
  let job =
    Runtime.parse_config
      "# production job\napp = toy # trailing comment\nbudget=5\nmodels=m.scm\ninput = 1.5, 2, 3.25\n\n"
  in
  match job.Runtime.input with
  | Some input -> Alcotest.(check (array (float 1e-12))) "input" [| 1.5; 2.0; 3.25 |] input
  | None -> Alcotest.fail "expected input"

let test_parse_missing_key () =
  Alcotest.check_raises "missing models" (Failure "Runtime.parse_config: missing key models")
    (fun () -> ignore (Runtime.parse_config "app = toy\nbudget = 5\n"))

let test_parse_bad_budget () =
  Alcotest.check_raises "bad budget" (Failure "Runtime.parse_config: bad budget \"much\"")
    (fun () -> ignore (Runtime.parse_config "app = toy\nbudget = much\nmodels = m\n"))

let test_parse_negative_budget () =
  Alcotest.check_raises "negative" (Failure "Runtime.parse_config: negative budget") (fun () ->
      ignore (Runtime.parse_config "app = toy\nbudget = -3\nmodels = m\n"))

let test_parse_missing_equals () =
  Alcotest.check_raises "no =" (Failure "Runtime.parse_config: line 1: missing '='") (fun () ->
      ignore (Runtime.parse_config "just words\n"))

let test_env_var_name () =
  Alcotest.(check string) "sanitized" "OPPROX_P2_FORCES_ON_ELEMENTS"
    (Runtime.env_var_name ~phase:1 ~ab_name:"forces_on_elements");
  Alcotest.(check string) "odd characters" "OPPROX_P1_A_B_3"
    (Runtime.env_var_name ~phase:0 ~ab_name:"a b-3")

let test_plan_env_vars () =
  let trained =
    Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy
  in
  let plan = Opprox.optimize trained ~budget:10.0 in
  let env = Runtime.plan_env_vars ~app:toy plan in
  Alcotest.(check string) "phase count var" "2" (List.assoc "OPPROX_PHASES" env);
  (* One variable per (phase, AB) plus the phase count. *)
  check_int "variable count" (1 + (2 * App.n_abs toy)) (List.length env);
  (* The encoded levels must match the schedule. *)
  List.iter
    (fun phase ->
      Array.iteri
        (fun ab name ->
          let v = List.assoc (Runtime.env_var_name ~phase ~ab_name:name) env in
          check_int "level matches schedule"
            (Schedule.level plan.Opprox.Optimizer.schedule ~phase ~ab)
            (int_of_string v))
        (App.ab_names toy))
    [ 0; 1 ]

let test_submit_end_to_end () =
  let trained =
    Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy
  in
  let path = Filename.temp_file "opprox_models" ".scm" in
  Opprox.save path trained;
  let job = { Runtime.app_name = "toy"; budget = 10.0; model_path = path; input = None } in
  let submission =
    Opprox.submit ~resolve:(fun name -> if name = "toy" then toy else raise Not_found) job
  in
  Sys.remove path;
  check_bool "outcome measured" true (submission.Runtime.outcome.Opprox_sim.Driver.speedup >= 0.99);
  check_bool "env non-empty" true (List.length submission.Runtime.env > 0)

let test_submit_wrong_app () =
  let trained =
    Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy
  in
  let path = Filename.temp_file "opprox_models" ".scm" in
  Opprox.save path trained;
  let job = { Runtime.app_name = "flow"; budget = 10.0; model_path = path; input = None } in
  let resolve name = if name = "toy" then toy else if name = "flow" then flow else raise Not_found in
  Alcotest.check_raises "mismatch"
    (Failure "Opprox.submit: models were trained for toy, job says flow") (fun () ->
      ignore (Opprox.submit ~resolve job));
  Sys.remove path

let suite =
  [
    ( "runtime",
      [
        Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
        Alcotest.test_case "parse input + comments" `Quick test_parse_with_input_and_comments;
        Alcotest.test_case "missing key" `Quick test_parse_missing_key;
        Alcotest.test_case "bad budget" `Quick test_parse_bad_budget;
        Alcotest.test_case "negative budget" `Quick test_parse_negative_budget;
        Alcotest.test_case "missing equals" `Quick test_parse_missing_equals;
        Alcotest.test_case "env var name" `Quick test_env_var_name;
        Alcotest.test_case "plan env vars" `Quick test_plan_env_vars;
        Alcotest.test_case "submit end-to-end" `Quick test_submit_end_to_end;
        Alcotest.test_case "submit wrong app" `Quick test_submit_wrong_app;
      ] );
  ]
