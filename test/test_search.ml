(* Tests for the stochastic schedule search (lib/search): mutation
   operators, the model-priced cost, single chains, the multi-chain
   driver, the optimizer integration (Stochastic strategy + the PLAN010
   fallback visibility), and the SRCH lint rules.  Everything searches
   over [Fixtures.toy] (2 ABs x 4 levels x 2 phases = 256 schedules), so
   the enumerated optimizer is an exact reference. *)

module App = Opprox_sim.App
module Ab = Opprox_sim.Ab
module Rng = Opprox_util.Rng
module Pool = Opprox_util.Pool
module Metrics = Opprox_obs.Metrics
module Optimizer = Opprox.Optimizer
module Models = Opprox.Models
module Diagnostic = Opprox_analysis.Diagnostic
module Lint_search = Opprox_analysis.Lint_search
module Mutate = Opprox_search.Mutate
module Cost = Opprox_search.Cost
module Mcmc = Opprox_search.Mcmc
module Search = Opprox_search.Search
open Fixtures

let trained =
  lazy (Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy)

let budget = 10.0

let cost () =
  let tr = Lazy.force trained in
  Cost.make ~models:tr.Opprox.models ~input:tr.Opprox.app.App.default_input ~budget

let toy_abs = toy.App.abs
let zero_sched n_phases = Array.init n_phases (fun _ -> Array.make (Array.length toy_abs) 0)

(* --------------------------------------------------------------- Mutate *)

let test_mutate_perturb () =
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let before = zero_sched 2 in
    before.(0).(0) <- 2;
    before.(1).(1) <- 3;
    let snapshot = Array.map Array.copy before in
    let after = Mutate.perturb rng ~abs:toy_abs ~first_phase:0 before in
    check_bool "input untouched" true (before = snapshot);
    let diffs = ref [] in
    Array.iteri
      (fun p row ->
        Array.iteri (fun a l -> if l <> before.(p).(a) then diffs := (p, a, l) :: !diffs) row)
      after;
    (match !diffs with
    | [ (p, a, l) ] ->
        check_int "one step" 1 (abs (l - before.(p).(a)));
        check_bool "in range" true (l >= 0 && l <= toy_abs.(a).Ab.max_level)
    | _ -> Alcotest.fail "perturb must change exactly one cell")
  done

let test_mutate_respects_first_phase () =
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let before = Array.init 3 (fun p -> Array.make 2 (p mod 2)) in
    let after = Mutate.apply rng ~abs:toy_abs ~first_phase:2 before in
    check_bool "executed prefix untouched" true
      (after.(0) = before.(0) && after.(1) = before.(1))
  done

let test_mutate_swap_preserves_rows () =
  let rng = Rng.create 3 in
  let before = [| [| 1; 2 |]; [| 3; 0 |]; [| 0; 3 |] |] in
  for _ = 1 to 50 do
    let after = Mutate.swap rng ~abs:toy_abs ~first_phase:0 before in
    let sort m = List.sort compare (Array.to_list (Array.map Array.to_list m)) in
    check_bool "same multiset of rows" true (sort after = sort before)
  done

let test_mutate_tighten_loosen () =
  let rng = Rng.create 1 in
  let before = [| [| 0; 3 |]; [| 2; 1 |] |] in
  let t = Mutate.tighten rng ~abs:toy_abs ~first_phase:0 before in
  check_bool "tighten steps down, clamped" true (t = [| [| 0; 2 |]; [| 1; 0 |] |]);
  let l = Mutate.loosen rng ~abs:toy_abs ~first_phase:0 before in
  check_bool "loosen steps up, clamped" true (l = [| [| 1; 3 |]; [| 3; 2 |] |])

let test_mutate_resample_in_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 100 do
    let after = Mutate.resample rng ~abs:toy_abs ~first_phase:0 (zero_sched 2) in
    Array.iter
      (fun row ->
        Array.iteri
          (fun a lvl ->
            check_bool "level in range" true (lvl >= 0 && lvl <= toy_abs.(a).Ab.max_level))
          row)
      after
  done

(* ----------------------------------------------------------------- Cost *)

let test_cost_all_exact_feasible () =
  let c = cost () in
  let e = Cost.eval c (zero_sched 2) in
  check_bool "all-exact is feasible" true e.Cost.feasible;
  check_bool "zero-anchor qos" true (e.Cost.qos_hi < 1.0);
  check_bool "cost is negated speedup" true (e.Cost.cost < 0.0)

let test_cost_penalizes_overrun () =
  let tr = Lazy.force trained in
  let tight = Cost.make ~models:tr.Opprox.models ~input:tr.Opprox.app.App.default_input ~budget:0.001 in
  let maxed = Array.init 2 (fun _ -> Array.map (fun (ab : Ab.t) -> ab.Ab.max_level) toy_abs) in
  let e = Cost.eval tight maxed in
  check_bool "over budget is infeasible" true (not e.Cost.feasible);
  check_bool "penalty dominates" true (e.Cost.cost > 0.0)

let test_cost_deterministic () =
  let c = cost () in
  let sched = [| [| 1; 2 |]; [| 3; 0 |] |] in
  check_bool "same eval twice" true (Cost.eval c sched = Cost.eval c sched)

(* ----------------------------------------------------------------- Mcmc *)

let run_chain seed iters =
  let c = cost () in
  (c, Mcmc.run ~rng:(Rng.create seed) ~cost:c ~first_phase:0 (Mcmc.default_config ~iters))

let test_mcmc_deterministic () =
  let _, a = run_chain 42 300 in
  let _, b = run_chain 42 300 in
  check_bool "identical runs" true (a = b)

let test_mcmc_best_feasible_and_improving () =
  let c, r = run_chain 7 300 in
  match r.Mcmc.best with
  | None -> Alcotest.fail "expected a feasible best"
  | Some (sched, e) ->
      check_bool "feasible" true e.Cost.feasible;
      check_bool "qos within budget" true (e.Cost.qos_hi <= budget +. 1e-6);
      check_bool "eval matches schedule" true (Cost.eval c sched = e);
      let exact = Cost.eval c (zero_sched 2) in
      check_bool "no worse than all-exact" true (e.Cost.cost <= exact.Cost.cost)

let test_mcmc_polish_fixed_point () =
  let c, r = run_chain 3 100 in
  let sched, e = Mcmc.polish ~cost:c ~first_phase:0 (fst (Option.get r.Mcmc.best)) in
  let sched2, e2 = Mcmc.polish ~cost:c ~first_phase:0 sched in
  check_bool "polish is a fixed point" true (sched = sched2 && e = e2);
  check_bool "polish never worsens" true
    (e.Cost.cost <= (snd (Option.get r.Mcmc.best)).Cost.cost +. 1e-12)

(* --------------------------------------------------------------- Search *)

let matrix s =
  Array.init (Opprox_sim.Schedule.n_phases s) (Opprox_sim.Schedule.levels_of_phase s)

let solve ?(chains = 2) ?(iters = 400) ?(seed = 0xBEEF) ?(budget = budget) () =
  let tr = Lazy.force trained in
  Search.solve
    ~config:{ Search.chains; iters; seed }
    ~models:tr.Opprox.models ~input:tr.Opprox.app.App.default_input ~budget ()

(* The issue's determinism property: same seed, chains in {1,2,8} ->
   bit-identical best schedules. *)
let test_search_chain_count_invariant =
  qcheck_case ~count:8 "chains in {1,2,8} agree" QCheck.(int_range 0 1000) (fun seed ->
      let sched chains =
        let plan, _ = solve ~chains ~seed () in
        matrix plan.Optimizer.schedule
      in
      let s1 = sched 1 and s2 = sched 2 and s8 = sched 8 in
      s1 = s2 && s2 = s8)

let test_search_jobs_invariant () =
  (* Same seed, different pool sizes -> bit-identical result. *)
  let tr = Lazy.force trained in
  let run jobs =
    let pool = Pool.create ~jobs () in
    let plan, stats =
      Search.solve
        ~config:{ Search.chains = 4; iters = 300; seed = 0xA11CE }
        ~pool ~models:tr.Opprox.models ~input:tr.Opprox.app.App.default_input ~budget ()
    in
    Pool.shutdown pool;
    (matrix plan.Optimizer.schedule, stats.Search.chain_costs)
  in
  check_bool "jobs 1 = jobs 4" true (run 1 = run 4)

let test_search_reaches_oracle () =
  (* On the enumerable toy the MCMC must reach >= 95% of the enumerated
     optimizer's predicted speedup (it searches a superset of Algorithm
     2's per-phase-split space, so it usually matches or beats it). *)
  let tr = Lazy.force trained in
  let oracle =
    Optimizer.optimize ~search:Optimizer.Enumerate ~models:tr.Opprox.models ~roi:tr.Opprox.roi
      ~input:tr.Opprox.app.App.default_input ~budget ()
  in
  let plan, stats = solve ~chains:4 ~iters:600 () in
  check_bool "feasible" true stats.Search.feasible;
  check_bool "within 95% of oracle" true
    (plan.Optimizer.predicted_speedup >= 0.95 *. oracle.Optimizer.predicted_speedup)

let test_search_plan_lints_clean () =
  let tr = Lazy.force trained in
  let plan, _stats = solve () in
  let diags = Optimizer.lint ~models:tr.Opprox.models plan in
  check_int "no lint findings" 0 (List.length (Diagnostic.errors diags));
  check_bool "predicted qos within budget" true (plan.Optimizer.predicted_qos <= budget +. 1e-6);
  check_bool "sub-budgets are predicted consumption" true
    (List.for_all
       (fun (c : Optimizer.phase_choice) ->
         Float.abs (c.Optimizer.sub_budget -. Float.max 0.0 c.Optimizer.predicted.Models.qos_hi)
         < 1e-9)
       plan.Optimizer.choices)

let test_search_stats_accounting () =
  let _, stats = solve ~chains:3 ~iters:200 () in
  check_int "chains" 3 stats.Search.chains;
  check_int "steps = chains x iters" 600 stats.Search.steps;
  check_int "chain costs per chain" 3 (Array.length stats.Search.chain_costs);
  check_bool "accepts bounded by steps" true
    (stats.Search.accepts >= 0 && stats.Search.accepts <= stats.Search.steps);
  check_bool "winning chain indexed" true
    (stats.Search.best_chain >= 0 && stats.Search.best_chain < 3)

let test_search_infeasible_falls_back_exact () =
  (* A negative budget admits nothing, not even the all-exact schedule:
     the driver must fall back to all-exact and say so via SRCH002. *)
  let tr = Lazy.force trained in
  let levels, stats =
    Search.solve_levels
      ~config:{ Search.chains = 2; iters = 50; seed = 1 }
      ~models:tr.Opprox.models ~input:tr.Opprox.app.App.default_input ~budget:(-5.0) ()
  in
  check_bool "all-exact fallback" true
    (Array.for_all (fun row -> Array.for_all (fun l -> l = 0) row) levels);
  check_bool "marked infeasible" true (not stats.Search.feasible);
  check_bool "SRCH002 reported" true
    (List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.code = "SRCH002") stats.Search.diagnostics)

(* -------------------------------------------------- optimizer integration *)

let test_optimizer_stochastic_strategy () =
  let tr = Lazy.force trained in
  check_bool "solver registered by linking opprox.search" true (Optimizer.stochastic_available ());
  let plan =
    Optimizer.optimize ~search:Optimizer.Stochastic
      ~stochastic:{ Optimizer.chains = 2; iters = 400; seed = 77 }
      ~models:tr.Opprox.models ~roi:tr.Opprox.roi ~input:tr.Opprox.app.App.default_input
      ~budget ()
  in
  check_bool "qos within budget" true (plan.Optimizer.predicted_qos <= budget +. 1e-6);
  check_int "no lint errors" 0
    (List.length (Diagnostic.errors (Optimizer.lint ~models:tr.Opprox.models plan)))

let with_captured_logs f =
  let buf = Buffer.create 256 in
  let reporter =
    {
      Logs.report =
        (fun src level ~over k msgf ->
          msgf (fun ?header:_ ?tags:_ fmt ->
              Format.kasprintf
                (fun s ->
                  Buffer.add_string buf
                    (Printf.sprintf "[%s][%s] %s\n"
                       (Logs.level_to_string (Some level))
                       (Logs.Src.name src) s);
                  over ();
                  k ())
                fmt));
    }
  in
  let old_reporter = Logs.reporter () in
  let old_level = Logs.level () in
  Logs.set_reporter reporter;
  Logs.set_level (Some Logs.Warning);
  let result =
    Fun.protect
      ~finally:(fun () ->
        Logs.set_reporter old_reporter;
        Logs.set_level old_level)
      f
  in
  (result, Buffer.contents buf)

let metric_value name =
  match Metrics.find name with Some (Metrics.Counter n) -> n | _ -> 0

let test_optimizer_fallback_visible () =
  (* The satellite regression: exceeding enumeration_limit must log the
     Warning-severity PLAN010 diagnostic and bump optimizer.fallbacks. *)
  let tr = Lazy.force trained in
  let before = metric_value "optimizer.fallbacks" in
  let plan, logs =
    with_captured_logs (fun () ->
        Optimizer.optimize ~enumeration_limit:1 ~models:tr.Opprox.models ~roi:tr.Opprox.roi
          ~input:tr.Opprox.app.App.default_input ~budget ())
  in
  check_int "fallback counter bumped" (before + 1) (metric_value "optimizer.fallbacks");
  check_bool "PLAN010 logged" true
    (let has_sub s sub =
       let ls = String.length s and lsub = String.length sub in
       let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
       go 0
     in
     has_sub logs "PLAN010" && has_sub logs "warning");
  (* With opprox.search linked the automatic fallback goes stochastic and
     still produces a lint-clean plan. *)
  check_bool "plan within budget" true (plan.Optimizer.predicted_qos <= budget +. 1e-6)

(* ------------------------------------------------------------ SRCH lint *)

let srch_view ?(chain_costs = [| -1.5; -1.5 |]) ?(best_cost = -1.5) ?(best_qos_hi = 5.0)
    ?(feasible = true) () =
  {
    Lint_search.app_name = "toy";
    budget = 10.0;
    chain_costs;
    best_cost;
    best_qos_hi;
    feasible;
  }

let codes view = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) (Lint_search.check view)

let test_lint_search_clean () = check_bool "agreement is clean" true (codes (srch_view ()) = [])

let test_lint_search_divergence () =
  check_bool "SRCH001 on spread" true
    (codes (srch_view ~chain_costs:[| -2.0; -1.0 |] ~best_cost:(-2.0) ()) = [ "SRCH001" ]);
  check_bool "nan chains ignored" true
    (codes (srch_view ~chain_costs:[| -1.5; Float.nan |] ()) = [])

let test_lint_search_infeasible () =
  check_bool "SRCH002" true
    (codes (srch_view ~feasible:false ~chain_costs:[| Float.nan |] ()) = [ "SRCH002" ])

let test_lint_search_budget_violation () =
  let ds = Lint_search.check (srch_view ~best_qos_hi:11.0 ()) in
  check_bool "SRCH003 is an error" true
    (List.exists
       (fun (d : Diagnostic.t) ->
         d.Diagnostic.code = "SRCH003" && d.Diagnostic.severity = Diagnostic.Error)
       ds)

let test_srch_codes_registered () =
  List.iter
    (fun code ->
      check_bool (code ^ " registered") true (List.mem_assoc code Diagnostic.codes))
    [ "PLAN010"; "SRCH001"; "SRCH002"; "SRCH003" ]

let suite =
  [
    ( "search-mutate",
      [
        Alcotest.test_case "perturb one cell" `Quick test_mutate_perturb;
        Alcotest.test_case "first_phase frozen" `Quick test_mutate_respects_first_phase;
        Alcotest.test_case "swap preserves rows" `Quick test_mutate_swap_preserves_rows;
        Alcotest.test_case "tighten/loosen clamp" `Quick test_mutate_tighten_loosen;
        Alcotest.test_case "resample in range" `Quick test_mutate_resample_in_range;
      ] );
    ( "search-cost",
      [
        Alcotest.test_case "all-exact feasible" `Quick test_cost_all_exact_feasible;
        Alcotest.test_case "overrun penalized" `Quick test_cost_penalizes_overrun;
        Alcotest.test_case "deterministic" `Quick test_cost_deterministic;
      ] );
    ( "search-mcmc",
      [
        Alcotest.test_case "deterministic" `Quick test_mcmc_deterministic;
        Alcotest.test_case "best feasible, improving" `Quick test_mcmc_best_feasible_and_improving;
        Alcotest.test_case "polish fixed point" `Quick test_mcmc_polish_fixed_point;
      ] );
    ( "search-driver",
      [
        test_search_chain_count_invariant;
        Alcotest.test_case "jobs invariant" `Quick test_search_jobs_invariant;
        Alcotest.test_case "reaches 95% of oracle" `Quick test_search_reaches_oracle;
        Alcotest.test_case "plan lints clean" `Quick test_search_plan_lints_clean;
        Alcotest.test_case "stats accounting" `Quick test_search_stats_accounting;
        Alcotest.test_case "infeasible falls back exact" `Quick
          test_search_infeasible_falls_back_exact;
      ] );
    ( "search-optimizer",
      [
        Alcotest.test_case "stochastic strategy" `Quick test_optimizer_stochastic_strategy;
        Alcotest.test_case "fallback visible (PLAN010)" `Quick test_optimizer_fallback_visible;
      ] );
    ( "search-lint",
      [
        Alcotest.test_case "clean agreement" `Quick test_lint_search_clean;
        Alcotest.test_case "divergence" `Quick test_lint_search_divergence;
        Alcotest.test_case "infeasible everywhere" `Quick test_lint_search_infeasible;
        Alcotest.test_case "budget violation" `Quick test_lint_search_budget_violation;
        Alcotest.test_case "codes registered" `Quick test_srch_codes_registered;
      ] );
  ]
