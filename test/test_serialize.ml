(* Tests for the S-expression codec and the model save/load round-trips. *)

module Sexp = Opprox_util.Sexp
module Polyreg = Opprox_ml.Polyreg
module Dtree = Opprox_ml.Dtree
module Confidence = Opprox_ml.Confidence
module Rng = Opprox_util.Rng
open Fixtures

(* ----------------------------------------------------------------- Sexp *)

let test_atom_roundtrip () =
  List.iter
    (fun s ->
      let sexp = Sexp.atom s in
      Alcotest.(check string) s s (Sexp.to_string_atom (Sexp.of_string (Sexp.to_string sexp))))
    [ "hello"; "with space"; "quo\"te"; "back\\slash"; "line\nbreak"; "tab\tchar"; "" ]

let test_int_float_roundtrip () =
  List.iter
    (fun i -> check_int "int" i (Sexp.to_int (Sexp.of_string (Sexp.to_string (Sexp.int i)))))
    [ 0; -1; 42; max_int; min_int ];
  List.iter
    (fun f ->
      check_float "float" f (Sexp.to_float (Sexp.of_string (Sexp.to_string (Sexp.float f)))))
    [ 0.0; -1.5; 3.14159265358979312; 1e-300; 1e300; Float.min_float ]

let test_nested_roundtrip () =
  let sexp =
    Sexp.list [ Sexp.atom "a"; Sexp.list [ Sexp.int 1; Sexp.float 2.5 ]; Sexp.atom "b c" ]
  in
  let back = Sexp.of_string (Sexp.to_string sexp) in
  check_bool "structurally equal" true (back = sexp)

let test_record_fields () =
  let r = Sexp.record [ ("x", Sexp.int 1); ("y", Sexp.atom "two") ] in
  check_int "x" 1 (Sexp.to_int (Sexp.field r "x"));
  Alcotest.(check string) "y" "two" (Sexp.to_string_atom (Sexp.field r "y"));
  check_bool "missing is None" true (Sexp.field_opt r "z" = None)

let test_record_missing_field () =
  let r = Sexp.record [ ("x", Sexp.int 1) ] in
  Alcotest.check_raises "missing" (Failure "Sexp: missing field nope") (fun () ->
      ignore (Sexp.field r "nope"))

let test_comments_and_whitespace () =
  let parsed = Sexp.of_string "  ; leading comment\n ( a ; mid\n b )  " in
  check_bool "parsed" true (parsed = Sexp.list [ Sexp.atom "a"; Sexp.atom "b" ])

let test_parse_errors () =
  List.iter
    (fun input ->
      match Sexp.of_string input with
      | _ -> Alcotest.failf "expected failure on %S" input
      | exception Failure _ -> ())
    [ "("; ")"; "(a"; "\"unterminated"; "a b"; "" ]

let test_arrays_roundtrip () =
  let ints = [| 1; -2; 3 |] and floats = [| 0.5; -1.25 |] in
  Alcotest.(check (array int)) "ints" ints
    (Sexp.to_int_array (Sexp.of_string (Sexp.to_string (Sexp.int_array ints))));
  Alcotest.(check (array (float 0.0))) "floats" floats
    (Sexp.to_float_array (Sexp.of_string (Sexp.to_string (Sexp.float_array floats))))

let test_save_load_file () =
  let path = Filename.temp_file "opprox_sexp" ".scm" in
  let sexp = Sexp.record [ ("k", Sexp.float 1.5); ("l", Sexp.list [ Sexp.int 1 ]) ] in
  Sexp.save path sexp;
  let back = Sexp.load path in
  Sys.remove path;
  check_bool "file roundtrip" true (back = sexp)

let prop_string_roundtrip =
  qcheck_case "arbitrary strings survive quoting" QCheck.string (fun s ->
      Sexp.of_string (Sexp.to_string (Sexp.string s)) = Sexp.Atom s)

(* ------------------------------------------------------ model roundtrips *)

let close a b = Float.abs (a -. b) < 1e-9 || (Float.is_nan a && Float.is_nan b)

let test_polyreg_roundtrip () =
  let rng = Rng.create 31 in
  let rows = Array.init 50 (fun i -> [| float_of_int (i mod 10); float_of_int (i / 10) |]) in
  let ys = Array.map (fun r -> (r.(0) *. r.(0)) +. (3.0 *. r.(1))) rows in
  let m = Polyreg.fit ~rng rows ys in
  let back = Polyreg.of_sexp (Sexp.of_string (Sexp.to_string (Polyreg.to_sexp m))) in
  check_int "degree preserved" (Polyreg.degree m) (Polyreg.degree back);
  check_float "cv preserved" (Polyreg.cv_r2 m) (Polyreg.cv_r2 back);
  List.iter
    (fun probe ->
      check_bool "identical predictions" true
        (close (Polyreg.predict m probe) (Polyreg.predict back probe)))
    [ [| 0.0; 0.0 |]; [| 5.5; 2.5 |]; [| 9.0; 4.0 |]; [| 20.0; 20.0 |] ]

let test_polyreg_split_roundtrip () =
  (* Force a split model: a discontinuous target defeats low-degree fits. *)
  let rng = Rng.create 32 in
  let rows = Array.init 60 (fun i -> [| float_of_int i |]) in
  let ys = Array.map (fun r -> if r.(0) < 30.0 then r.(0) else 1000.0 -. r.(0)) rows in
  let config = { Polyreg.default_config with max_degree = 1; target_r2 = 0.999 } in
  let m = Polyreg.fit ~config ~rng rows ys in
  let back = Polyreg.of_sexp (Polyreg.to_sexp m) in
  check_bool "same split-ness" true (Polyreg.is_split m = Polyreg.is_split back);
  List.iter
    (fun x ->
      check_bool "identical predictions" true
        (close (Polyreg.predict m [| x |]) (Polyreg.predict back [| x |])))
    [ 0.0; 15.0; 29.9; 30.1; 59.0 ]

let test_dtree_roundtrip () =
  let rows = Array.init 40 (fun i -> [| float_of_int (i mod 8); float_of_int (i / 8) |]) in
  let labels = Array.map (fun r -> (int_of_float r.(0) + int_of_float r.(1)) mod 3) rows in
  let t = Dtree.fit rows labels in
  let back = Dtree.of_sexp (Sexp.of_string (Sexp.to_string (Dtree.to_sexp t))) in
  check_int "depth" (Dtree.depth t) (Dtree.depth back);
  check_int "leaves" (Dtree.n_leaves t) (Dtree.n_leaves back);
  Array.iter
    (fun row -> check_int "same classification" (Dtree.predict t row) (Dtree.predict back row))
    rows

let test_confidence_roundtrip () =
  let ci = Confidence.of_residuals ~p:0.9 [| 0.5; -1.5; 0.1 |] in
  let back = Confidence.of_sexp (Confidence.to_sexp ci) in
  check_float "half width" (Confidence.half_width ci) (Confidence.half_width back)

let test_trained_roundtrip () =
  let trained =
    Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy
  in
  let path = Filename.temp_file "opprox_trained" ".scm" in
  Opprox.save path trained;
  let back = Opprox.load ~resolve:(fun name -> if name = "toy" then toy else raise Not_found) path in
  Sys.remove path;
  Alcotest.(check (array (float 1e-12))) "roi preserved" trained.Opprox.roi back.Opprox.roi;
  check_int "samples preserved"
    (Opprox.Training.n_runs trained.Opprox.training)
    (Opprox.Training.n_runs back.Opprox.training);
  (* The loaded models must drive the optimizer to the same plan. *)
  let plan a = Opprox.optimize a ~budget:10.0 in
  let p1 = plan trained and p2 = plan back in
  check_bool "same schedule" true
    (Opprox_sim.Schedule.equal p1.Opprox.Optimizer.schedule p2.Opprox.Optimizer.schedule);
  (* And to identical predictions everywhere in the space. *)
  List.iter
    (fun levels ->
      for phase = 0 to 1 do
        let a = Opprox.Models.predict trained.Opprox.models ~input:[| 1.5 |] ~phase ~levels in
        let b = Opprox.Models.predict back.Opprox.models ~input:[| 1.5 |] ~phase ~levels in
        check_bool "prediction match" true
          (close a.Opprox.Models.qos b.Opprox.Models.qos
          && close a.Opprox.Models.speedup b.Opprox.Models.speedup)
      done)
    [ [| 1; 0 |]; [| 2; 3 |]; [| 3; 3 |] ]

let test_load_unknown_app () =
  let trained =
    Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy
  in
  let path = Filename.temp_file "opprox_trained" ".scm" in
  Opprox.save path trained;
  Alcotest.check_raises "unresolvable" Not_found (fun () ->
      ignore (Opprox.load ~resolve:(fun _ -> raise Not_found) path));
  Sys.remove path

let suite =
  [
    ( "sexp",
      [
        Alcotest.test_case "atom roundtrip" `Quick test_atom_roundtrip;
        Alcotest.test_case "int/float roundtrip" `Quick test_int_float_roundtrip;
        Alcotest.test_case "nested roundtrip" `Quick test_nested_roundtrip;
        Alcotest.test_case "record fields" `Quick test_record_fields;
        Alcotest.test_case "missing field" `Quick test_record_missing_field;
        Alcotest.test_case "comments and whitespace" `Quick test_comments_and_whitespace;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "arrays" `Quick test_arrays_roundtrip;
        Alcotest.test_case "file save/load" `Quick test_save_load_file;
        prop_string_roundtrip;
      ] );
    ( "model-roundtrips",
      [
        Alcotest.test_case "polyreg" `Quick test_polyreg_roundtrip;
        Alcotest.test_case "polyreg split" `Quick test_polyreg_split_roundtrip;
        Alcotest.test_case "dtree" `Quick test_dtree_roundtrip;
        Alcotest.test_case "confidence" `Quick test_confidence_roundtrip;
        Alcotest.test_case "trained pipeline" `Quick test_trained_roundtrip;
        Alcotest.test_case "unknown app" `Quick test_load_unknown_app;
      ] );
  ]
