(* Tests for the plan-serving daemon (Opprox_serve): the sharded LRU
   plan cache against a reference model, wire-codec roundtrips, frame IO
   over a socketpair, the full in-process request path (validation,
   cache, deadlines, admission), and a daemon end-to-end over a real
   Unix-domain socket. *)

module Plancache = Opprox_serve.Plancache
module Protocol = Opprox_serve.Protocol
module Server = Opprox_serve.Server
module Client = Opprox_serve.Client
module Diagnostic = Opprox_analysis.Diagnostic
module Schedule = Opprox_sim.Schedule
open Fixtures

(* ------------------------------------------------------------- plancache *)

(* Reference model for a single-shard LRU: an association list kept in
   recency order (most recent first). *)
module Model = struct
  type t = { cap : int; mutable entries : (int * int) list }

  let create cap = { cap; entries = [] }

  let find m k =
    match List.assoc_opt k m.entries with
    | None -> None
    | Some v ->
        m.entries <- (k, v) :: List.remove_assoc k m.entries;
        Some v

  let add m k v =
    m.entries <- (k, v) :: List.remove_assoc k m.entries;
    if List.length m.entries > m.cap then
      m.entries <- List.filteri (fun i _ -> i < m.cap) m.entries
end

type op = Find of int | Add of int

let op_gen =
  QCheck.(
    map
      (fun (is_add, k) -> if is_add then Add k else Find k)
      (pair bool (int_range 0 7)))

let prop_lru_matches_model =
  qcheck_case ~count:300 "single-shard LRU = reference model"
    QCheck.(pair (int_range 1 5) (list_of_size (Gen.int_range 0 60) op_gen))
    (fun (cap, ops) ->
      let cache = Plancache.create ~shards:1 ~capacity:cap () in
      let model = Model.create cap in
      let key k = Printf.sprintf "k%d" k in
      List.for_all
        (fun (i, op) ->
          match op with
          | Find k -> Plancache.find cache (key k) = Model.find model k
          | Add k ->
              Plancache.add cache (key k) i;
              Model.add model k i;
              true)
        (List.mapi (fun i op -> (i, op)) ops)
      && Plancache.size cache = List.length model.Model.entries)

let test_counters_exact () =
  let c = Plancache.create ~shards:1 ~capacity:2 () in
  ignore (Plancache.find c "a");
  (* miss *)
  Plancache.add c "a" 1;
  Plancache.add c "b" 2;
  ignore (Plancache.find c "a");
  (* hit; "a" now most recent *)
  Plancache.add c "c" 3;
  (* evicts "b" *)
  check_bool "a survives" true (Plancache.mem c "a");
  check_bool "b evicted" false (Plancache.mem c "b");
  let s = Plancache.stats c in
  check_int "hits" 1 s.Plancache.hits;
  check_int "misses" 1 s.Plancache.misses;
  check_int "insertions" 3 s.Plancache.insertions;
  check_int "evictions" 1 s.Plancache.evictions;
  check_int "size" 2 (Plancache.size c)

let test_capacity_bound_concurrent () =
  let capacity = 16 in
  let c = Plancache.create ~shards:4 ~capacity () in
  let n_domains = 4 and per_domain = 500 in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Plancache.add c (Printf.sprintf "d%d-%d" d i) i;
              ignore (Plancache.find c (Printf.sprintf "d%d-%d" d i))
            done))
  in
  List.iter Domain.join domains;
  let s = Plancache.stats c in
  check_bool "size <= capacity" true (Plancache.size c <= capacity);
  check_int "insertions" (n_domains * per_domain) s.Plancache.insertions;
  check_int "evictions = insertions - size"
    (s.Plancache.insertions - Plancache.size c)
    s.Plancache.evictions

let test_fingerprint_stability () =
  let fp input budget =
    Plancache.fingerprint ~app:"toy" ~input ~budget ~models_hash:"abc"
  in
  (* Bit-identical floats, however reconstructed, give the same key. *)
  let b = float_of_string (string_of_float 10.0) in
  check_bool "reconstructed budget" true (fp [| 1.5 |] 10.0 = fp [| 1.5 |] b);
  (* One ulp of difference anywhere changes the key. *)
  let bump x = Int64.float_of_bits (Int64.succ (Int64.bits_of_float x)) in
  check_bool "budget ulp" false (fp [| 1.5 |] 10.0 = fp [| 1.5 |] (bump 10.0));
  check_bool "input ulp" false (fp [| 1.5 |] 10.0 = fp [| bump 1.5 |] 10.0);
  check_bool "app" false
    (fp [| 1.5 |] 10.0
    = Plancache.fingerprint ~app:"toy2" ~input:[| 1.5 |] ~budget:10.0 ~models_hash:"abc");
  check_bool "hash" false
    (fp [| 1.5 |] 10.0
    = Plancache.fingerprint ~app:"toy" ~input:[| 1.5 |] ~budget:10.0 ~models_hash:"abd")

let test_create_validation () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Plancache.create: capacity must be >= 1") (fun () ->
      ignore (Plancache.create ~capacity:0 ()));
  let c = Plancache.create ~shards:64 ~capacity:3 () in
  check_bool "shards clamped to capacity" true (Plancache.shards c <= 3)

(* -------------------------------------------------------------- protocol *)

let trained = lazy (Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy)

let roundtrip_request req =
  Protocol.request_of_sexp
    (Opprox_util.Sexp.of_string (Opprox_util.Sexp.to_string (Protocol.request_to_sexp req)))

let roundtrip_response resp =
  Protocol.response_of_sexp
    (Opprox_util.Sexp.of_string (Opprox_util.Sexp.to_string (Protocol.response_to_sexp resp)))

let test_request_roundtrip () =
  let full =
    Protocol.request ~input:[| 1.5; -0.25 |] ~deadline_ms:40.0 ~models_hash:"cafe"
      ~no_cache:true ~app:"toy" ~budget:12.5 ()
  in
  check_bool "full request" true (roundtrip_request full = full);
  let minimal = Protocol.request ~app:"toy" ~budget:10.0 () in
  check_bool "minimal request" true (roundtrip_request minimal = minimal);
  (* A frame without an explicit version parses as the current one. *)
  let no_v =
    Protocol.request_of_sexp (Opprox_util.Sexp.of_string "((app toy) (budget 10))")
  in
  check_bool "versionless frame" true (no_v.Protocol.app = "toy");
  check_int "frame_version default" Protocol.version
    (Protocol.frame_version (Opprox_util.Sexp.of_string "((app toy) (budget 10))"))

let test_response_roundtrip () =
  let plan = Opprox.optimize (Lazy.force trained) ~budget:10.0 in
  let reply =
    Protocol.Plan { plan; cache = Protocol.Miss; models_hash = "cafe"; elapsed_ms = 1.25 }
  in
  (match roundtrip_response reply with
  | Protocol.Plan p ->
      check_bool "cache status" true (p.cache = Protocol.Miss);
      check_float "elapsed" 1.25 p.elapsed_ms;
      check_bool "schedule" true
        (Schedule.equal plan.Opprox.Optimizer.schedule p.plan.Opprox.Optimizer.schedule)
  | _ -> Alcotest.fail "expected Plan");
  let err = Protocol.Error [ Opprox_analysis.Lint_request.malformed "boom" ] in
  (match roundtrip_response err with
  | Protocol.Error [ d ] -> Alcotest.(check string) "code" "SRV004" d.Diagnostic.code
  | _ -> Alcotest.fail "expected Error");
  check_bool "timeout" true
    (roundtrip_response (Protocol.Timeout { elapsed_ms = 3.0; deadline_ms = 2.0 })
    = Protocol.Timeout { elapsed_ms = 3.0; deadline_ms = 2.0 });
  check_bool "overloaded" true
    (roundtrip_response (Protocol.Overloaded { inflight = 9; limit = 8 })
    = Protocol.Overloaded { inflight = 9; limit = 8 })

(* Frame IO over a socketpair: framing survives the wire, EOF is clean,
   truncation and absurd lengths are Failures, not hangs or allocations. *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let sexp = Opprox_util.Sexp.of_string "((app toy) (budget 10) (v 1))" in
      Protocol.write_frame a sexp;
      Protocol.write_frame a sexp;
      (match Protocol.read_frame b with
      | Some s -> check_bool "first frame" true (Opprox_util.Sexp.to_string s = Opprox_util.Sexp.to_string sexp)
      | None -> Alcotest.fail "expected a frame");
      ignore (Protocol.read_frame b);
      Unix.close a;
      check_bool "clean EOF" true (Protocol.read_frame b = None))

let test_frame_truncation () =
  with_socketpair (fun a b ->
      (* Length prefix promising 100 bytes, then only 5 and EOF. *)
      let prefix = Bytes.make 4 '\000' in
      Bytes.set prefix 3 (Char.chr 100);
      ignore (Unix.write a prefix 0 4);
      ignore (Unix.write_substring a "((a))" 0 5);
      Unix.close a;
      match Protocol.read_frame b with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure on truncated frame")

let test_frame_oversize () =
  with_socketpair (fun a b ->
      let prefix = Bytes.make 4 '\255' in
      ignore (Unix.write a prefix 0 4);
      match Protocol.read_frame b with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure on oversized frame")

(* ---------------------------------------------------------------- server *)

let make_server ?config () = Server.create ?config [ Lazy.force trained ]

let code_of = function
  | Protocol.Error (d :: _) -> d.Diagnostic.code
  | Protocol.Error [] -> "no-diagnostic"
  | Protocol.Plan _ -> "plan"
  | Protocol.PlanDelta _ -> "plan_delta"
  | Protocol.Timeout _ -> "timeout"
  | Protocol.Overloaded _ -> "overloaded"

let test_cold_then_hit () =
  let server = make_server () in
  let client = Client.loopback server in
  let req = Protocol.request ~app:"toy" ~budget:10.0 () in
  (match Client.request client req with
  | Protocol.Plan { plan; cache = Protocol.Miss; models_hash; _ } ->
      (* The served plan is the same one a local solve produces. *)
      let local = Opprox.optimize (Lazy.force trained) ~budget:10.0 in
      check_bool "same schedule" true
        (Schedule.equal plan.Opprox.Optimizer.schedule local.Opprox.Optimizer.schedule);
      check_float "same predicted speedup" local.Opprox.Optimizer.predicted_speedup
        plan.Opprox.Optimizer.predicted_speedup;
      check_bool "hash reported" true
        (Some models_hash = Server.models_hash server "toy")
  | resp -> Alcotest.fail ("expected cold Plan, got " ^ code_of resp));
  (match Client.request client req with
  | Protocol.Plan { cache = Protocol.Hit; _ } -> ()
  | resp -> Alcotest.fail ("expected cache hit, got " ^ code_of resp));
  (* An explicit input equal to the default shares the cache entry. *)
  (match
     Client.request client
       (Protocol.request ~input:toy.Opprox_sim.App.default_input ~app:"toy" ~budget:10.0 ())
   with
  | Protocol.Plan { cache = Protocol.Hit; _ } -> ()
  | resp -> Alcotest.fail ("expected default-input hit, got " ^ code_of resp));
  let s = Server.cache_stats server in
  check_int "hits" 2 s.Plancache.hits;
  check_int "misses" 1 s.Plancache.misses;
  check_int "inflight settled" 0 (Server.inflight server)

let test_no_cache_bypasses_lookup () =
  let server = make_server () in
  let client = Client.loopback server in
  let req = Protocol.request ~no_cache:true ~app:"toy" ~budget:10.0 () in
  (match Client.request client req with
  | Protocol.Plan { cache = Protocol.Miss; _ } -> ()
  | resp -> Alcotest.fail ("expected Miss, got " ^ code_of resp));
  (match Client.request client req with
  | Protocol.Plan { cache = Protocol.Miss; _ } -> ()
  | resp -> Alcotest.fail ("expected Miss again, got " ^ code_of resp));
  (* ...but the solves still populated the cache for ordinary requests. *)
  (match Client.request client (Protocol.request ~app:"toy" ~budget:10.0 ()) with
  | Protocol.Plan { cache = Protocol.Hit; _ } -> ()
  | resp -> Alcotest.fail ("expected Hit, got " ^ code_of resp));
  let s = Server.cache_stats server in
  check_int "no lookups missed" 1 s.Plancache.hits;
  (* The second bypassed solve overwrote the first's entry in place. *)
  check_int "one key inserted" 1 s.Plancache.insertions

let test_validation_errors () =
  let server = make_server () in
  let client = Client.loopback server in
  let expect code req =
    Alcotest.(check string) code code (code_of (Client.request client req))
  in
  expect "SRV001" (Protocol.request ~app:"toy" ~budget:0.0 ());
  expect "SRV001" (Protocol.request ~app:"toy" ~budget:150.0 ());
  expect "SRV001" (Protocol.request ~app:"toy" ~budget:Float.nan ());
  expect "SRV002" (Protocol.request ~app:"nonesuch" ~budget:10.0 ());
  expect "SRV003" (Protocol.request ~models_hash:"deadbeef" ~app:"toy" ~budget:10.0 ());
  expect "SRV006" (Protocol.request ~input:[| 1.0; 2.0 |] ~app:"toy" ~budget:10.0 ());
  expect "SRV006" (Protocol.request ~input:[| Float.infinity |] ~app:"toy" ~budget:10.0 ());
  expect "SRV007" (Protocol.request ~deadline_ms:(-1.0) ~app:"toy" ~budget:10.0 ());
  (* A correct client-asserted hash passes. *)
  let hash = Option.get (Server.models_hash server "toy") in
  (match Client.request client (Protocol.request ~models_hash:hash ~app:"toy" ~budget:10.0 ()) with
  | Protocol.Plan _ -> ()
  | resp -> Alcotest.fail ("expected Plan with correct hash, got " ^ code_of resp));
  (* Rejected requests never reach cache or solver. *)
  check_int "no cache traffic" 1 (Server.cache_stats server).Plancache.misses

let test_deadline_timeout () =
  let server = make_server () in
  let client = Client.loopback server in
  (match
     Client.request client (Protocol.request ~deadline_ms:1e-6 ~app:"toy" ~budget:10.0 ())
   with
  | Protocol.Timeout { deadline_ms; elapsed_ms } ->
      check_float "deadline echoed" 1e-6 deadline_ms;
      check_bool "elapsed past deadline" true (elapsed_ms > deadline_ms)
  | resp -> Alcotest.fail ("expected Timeout, got " ^ code_of resp));
  (* A generous deadline answers normally. *)
  match
    Client.request client (Protocol.request ~deadline_ms:60_000.0 ~app:"toy" ~budget:10.0 ())
  with
  | Protocol.Plan _ -> ()
  | resp -> Alcotest.fail ("expected Plan, got " ^ code_of resp)

let test_default_deadline_config () =
  let config = { Server.default_config with Server.default_deadline_ms = Some 1e-6 } in
  let server = make_server ~config () in
  let client = Client.loopback server in
  (match Client.request client (Protocol.request ~app:"toy" ~budget:10.0 ()) with
  | Protocol.Timeout _ -> ()
  | resp -> Alcotest.fail ("expected Timeout from server default, got " ^ code_of resp));
  (* An explicit per-request deadline overrides the default. *)
  match
    Client.request client (Protocol.request ~deadline_ms:60_000.0 ~app:"toy" ~budget:10.0 ())
  with
  | Protocol.Plan _ -> ()
  | resp -> Alcotest.fail ("expected Plan, got " ^ code_of resp)

let test_concurrent_handles () =
  let server =
    make_server ~config:{ Server.default_config with Server.max_inflight = 2 } ()
  in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            List.init 10 (fun i ->
                Server.handle server
                  (Protocol.request ~no_cache:true ~app:"toy"
                     ~budget:(5.0 +. float_of_int ((d * 10) + i))
                     ()))))
  in
  let responses = List.concat_map Domain.join domains in
  (* Under contention every reply is either a plan or an explicit shed —
     never an exception, never a corrupted cache. *)
  List.iter
    (fun resp ->
      match resp with
      | Protocol.Plan _ | Protocol.Overloaded _ -> ()
      | _ -> Alcotest.fail ("unexpected reply under load: " ^ code_of resp))
    responses;
  check_int "inflight settled" 0 (Server.inflight server);
  check_bool "cache within capacity" true
    ((Server.cache_stats server).Plancache.insertions <= 40)

let test_create_rejects_duplicates () =
  let tr = Lazy.force trained in
  Alcotest.check_raises "duplicate apps"
    (Invalid_argument "Server.create: duplicate models for toy") (fun () ->
      ignore (Server.create [ tr; tr ]));
  Alcotest.check_raises "empty" (Invalid_argument "Server.create: no trained pipelines")
    (fun () -> ignore (Server.create []))

(* -------------------------------------------------------- socket end-to-end *)

let temp_socket () =
  let path = Filename.temp_file "opprox_serve" ".sock" in
  Sys.remove path;
  path

let rec connect_retry ~socket n =
  match Client.connect ~socket with
  | client -> client
  | exception Unix.Unix_error _ when n > 0 ->
      Unix.sleepf 0.05;
      connect_retry ~socket (n - 1)

let test_socket_end_to_end () =
  let socket = temp_socket () in
  let server =
    make_server ~config:{ Server.default_config with Server.max_inflight = 1; jobs = Some 2 } ()
  in
  let daemon = Domain.spawn (fun () -> Server.serve server ~socket) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join daemon)
    (fun () ->
      let client = connect_retry ~socket 100 in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          (* Cold then hot over the wire. *)
          (match Client.request client (Protocol.request ~app:"toy" ~budget:10.0 ()) with
          | Protocol.Plan { cache = Protocol.Miss; _ } -> ()
          | resp -> Alcotest.fail ("expected Miss over socket, got " ^ code_of resp));
          (match Client.request client (Protocol.request ~app:"toy" ~budget:10.0 ()) with
          | Protocol.Plan { cache = Protocol.Hit; _ } -> ()
          | resp -> Alcotest.fail ("expected Hit over socket, got " ^ code_of resp));
          (* With max_inflight 1 and this connection holding the slot, a
             second connection is shed at accept: the daemon volunteers
             one Overloaded frame and closes without reading anything. *)
          let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect fd (Unix.ADDR_UNIX socket);
              match Protocol.read_frame fd with
              | Some frame -> (
                  match Protocol.response_of_sexp frame with
                  | Protocol.Overloaded { limit; _ } -> check_int "limit" 1 limit
                  | resp -> Alcotest.fail ("expected Overloaded, got " ^ code_of resp))
              | None -> Alcotest.fail "shed connection closed without a frame"));
      (* Wait for the worker serving the closed connection to release
         its admission slot, or the next connect is shed too. *)
      let rec settle n =
        if Server.inflight server > 0 && n > 0 then begin
          Unix.sleepf 0.01;
          settle (n - 1)
        end
      in
      settle 200;
      (* Frame-level garbage gets a structured SRV004 reply. *)
      let garbage = connect_retry ~socket 100 in
      Fun.protect
        ~finally:(fun () -> Client.close garbage)
        (fun () ->
          match Client.send_raw garbage "((v 1) (app" with
          | Protocol.Error (d :: _) ->
              Alcotest.(check string) "SRV004" "SRV004" d.Diagnostic.code
          | resp -> Alcotest.fail ("expected SRV004, got " ^ code_of resp)));
  check_bool "socket file removed at shutdown" false (Sys.file_exists socket)

let suite =
  [
    ( "plancache",
      [
        prop_lru_matches_model;
        Alcotest.test_case "counters exact" `Quick test_counters_exact;
        Alcotest.test_case "capacity bound (4 domains)" `Quick test_capacity_bound_concurrent;
        Alcotest.test_case "fingerprint stability" `Quick test_fingerprint_stability;
        Alcotest.test_case "create validation" `Quick test_create_validation;
      ] );
    ( "serve-protocol",
      [
        Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
        Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
        Alcotest.test_case "frame roundtrip + EOF" `Quick test_frame_roundtrip;
        Alcotest.test_case "truncated frame" `Quick test_frame_truncation;
        Alcotest.test_case "oversized frame" `Quick test_frame_oversize;
      ] );
    ( "serve-server",
      [
        Alcotest.test_case "cold solve then cache hit" `Quick test_cold_then_hit;
        Alcotest.test_case "no-cache bypass" `Quick test_no_cache_bypasses_lookup;
        Alcotest.test_case "SRV validation errors" `Quick test_validation_errors;
        Alcotest.test_case "deadline timeout" `Quick test_deadline_timeout;
        Alcotest.test_case "server default deadline" `Quick test_default_deadline_config;
        Alcotest.test_case "concurrent handles" `Quick test_concurrent_handles;
        Alcotest.test_case "create validation" `Quick test_create_rejects_duplicates;
        Alcotest.test_case "socket end-to-end" `Quick test_socket_end_to_end;
      ] );
  ]
