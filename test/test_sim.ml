(* Tests for Opprox_sim: Approx, Schedule, Workmeter, Env, Qos,
   Config_space, App, Driver. *)

module Ab = Opprox_sim.Ab
module Approx = Opprox_sim.Approx
module Schedule = Opprox_sim.Schedule
module Workmeter = Opprox_sim.Workmeter
module Env = Opprox_sim.Env
module Qos = Opprox_sim.Qos
module Config_space = Opprox_sim.Config_space
module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Rng = Opprox_util.Rng
open Fixtures

let collect_indices f =
  let acc = ref [] in
  f (fun i -> acc := i :: !acc);
  List.rev !acc

(* ----------------------------------------------------------------- Approx *)

let test_perforate_exact () =
  Alcotest.(check (list int)) "level 0 visits all" [ 0; 1; 2; 3 ]
    (collect_indices (Approx.perforate ~level:0 4))

let test_perforate_stride () =
  Alcotest.(check (list int)) "level 2 strides by 3" [ 0; 3; 6; 9 ]
    (collect_indices (Approx.perforate ~level:2 10))

let test_perforate_offset () =
  Alcotest.(check (list int)) "offset rotates start" [ 1; 4; 7 ]
    (collect_indices (Approx.perforate ~offset:4 ~level:2 9))

let test_perforate_count () =
  for level = 0 to 5 do
    for n = 0 to 25 do
      for offset = 0 to 3 do
        check_int
          (Printf.sprintf "count l=%d n=%d o=%d" level n offset)
          (List.length (collect_indices (Approx.perforate ~offset ~level n)))
          (Approx.perforated_count ~offset ~level n)
      done
    done
  done

let test_perforate_negative () =
  Alcotest.check_raises "negative level" (Invalid_argument "Approx: negative level") (fun () ->
      Approx.perforate ~level:(-1) 3 ignore)

let test_truncate_exact () =
  check_int "level 0 keeps all" 10 (Approx.truncated_count ~level:0 ~max_level:5 10)

let test_truncate_half_at_max () =
  check_int "max level halves" 5 (Approx.truncated_count ~level:5 ~max_level:5 10)

let test_truncate_is_prefix () =
  Alcotest.(check (list int)) "prefix" [ 0; 1; 2; 3; 4; 5; 6 ]
    (collect_indices (Approx.truncate ~level:3 ~max_level:5 10))

let test_truncate_level_above_max () =
  Alcotest.check_raises "level > max"
    (Invalid_argument "Approx.truncate: level above max_level") (fun () ->
      Approx.truncate ~level:6 ~max_level:5 10 ignore)

let test_memoize_exact () =
  let computed = ref [] in
  Approx.memoize ~level:0 5
    ~compute:(fun i ->
      computed := i :: !computed;
      i)
    ~use:(fun i v -> check_int "fresh value" i v);
  check_int "computes all at level 0" 5 (List.length !computed)

let test_memoize_replays_cache () =
  let uses = ref [] in
  Approx.memoize ~level:2 7 ~compute:(fun i -> i * 10) ~use:(fun i v -> uses := (i, v) :: !uses);
  let uses = List.rev !uses in
  Alcotest.(check (list (pair int int))) "cache replay pattern"
    [ (0, 0); (1, 0); (2, 0); (3, 30); (4, 30); (5, 30); (6, 60) ]
    uses

let test_memoize_always_computes_first () =
  (* Offset shifting must still fill the cache at i = 0. *)
  let computed = ref 0 in
  Approx.memoize ~offset:1 ~level:3 6
    ~compute:(fun i ->
      incr computed;
      i)
    ~use:(fun _ _ -> ());
  check_bool "computed at least once" true (!computed >= 1)

let test_memoize_count () =
  for level = 0 to 4 do
    for n = 0 to 15 do
      for offset = 0 to 2 do
        let computed = ref 0 in
        Approx.memoize ~offset ~level n
          ~compute:(fun i -> incr computed; i)
          ~use:(fun _ _ -> ());
        check_int
          (Printf.sprintf "memo count l=%d n=%d o=%d" level n offset)
          !computed
          (Approx.memoized_compute_count ~offset ~level n)
      done
    done
  done

let test_tune_parameter () =
  check_float "identity at 0" 10.0 (Approx.tune_parameter ~level:0 ~max_level:5 10.0);
  check_float "half at max" 5.0 (Approx.tune_parameter ~level:5 ~max_level:5 10.0);
  check_float "linear in level" 8.0 (Approx.tune_parameter ~level:2 ~max_level:5 10.0)

let prop_perforate_less_work =
  qcheck_case "higher level => fewer iterations"
    QCheck.(pair (int_range 0 9) (int_range 0 100))
    (fun (level, n) ->
      Approx.perforated_count ~level:(level + 1) n <= Approx.perforated_count ~level n)

let prop_truncate_monotone =
  qcheck_case "truncation monotone in level" QCheck.(pair (int_range 0 4) (int_range 0 100))
    (fun (level, n) ->
      Approx.truncated_count ~level:(level + 1) ~max_level:5 n
      <= Approx.truncated_count ~level ~max_level:5 n)

(* --------------------------------------------------------------- Schedule *)

let test_schedule_exact () =
  let s = Schedule.exact ~n_abs:3 in
  check_bool "is exact" true (Schedule.is_exact s);
  check_int "one phase" 1 (Schedule.n_phases s);
  check_int "level zero" 0 (Schedule.level s ~phase:0 ~ab:2)

let test_schedule_uniform () =
  let s = Schedule.uniform ~n_phases:4 [| 1; 2 |] in
  for p = 0 to 3 do
    check_int "same levels each phase" 2 (Schedule.level s ~phase:p ~ab:1)
  done

let test_schedule_single_phase () =
  let s = Schedule.single_phase_active ~n_phases:4 ~phase:2 [| 3; 1 |] in
  check_int "active phase" 3 (Schedule.level s ~phase:2 ~ab:0);
  check_int "other phases exact" 0 (Schedule.level s ~phase:0 ~ab:0);
  check_bool "not exact" false (Schedule.is_exact s)

let test_schedule_phase_of_iter () =
  let s = Schedule.uniform ~n_phases:4 [| 0 |] in
  check_int "first iter phase 0" 0 (Schedule.phase_of_iter s ~expected_iters:100 ~iter:0);
  check_int "iter 24 still phase 0" 0 (Schedule.phase_of_iter s ~expected_iters:100 ~iter:24);
  check_int "iter 25 phase 1" 1 (Schedule.phase_of_iter s ~expected_iters:100 ~iter:25);
  check_int "last quarter" 3 (Schedule.phase_of_iter s ~expected_iters:100 ~iter:99)

let test_schedule_overflow_to_last_phase () =
  (* Iterations beyond the exact count stay in the final phase (paper
     footnote 2). *)
  let s = Schedule.uniform ~n_phases:4 [| 0 |] in
  check_int "overflow" 3 (Schedule.phase_of_iter s ~expected_iters:100 ~iter:400)

let test_schedule_unknown_iters () =
  let s = Schedule.uniform ~n_phases:4 [| 0 |] in
  check_int "unknown maps to 0" 0 (Schedule.phase_of_iter s ~expected_iters:0 ~iter:50)

let test_schedule_make_validation () =
  (* The messages carry the offending coordinates. *)
  Alcotest.check_raises "negative level"
    (Invalid_argument "Schedule.make: negative level -1 (phase 0, ab 0)") (fun () ->
      ignore (Schedule.make [| [| -1 |] |]));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Schedule.make: ragged rows (phase 1 has 2 ABs, phase 0 has 1)")
    (fun () -> ignore (Schedule.make [| [| 1 |]; [| 1; 2 |] |]))

let test_schedule_levels_of_phase_copies () =
  let s = Schedule.make [| [| 1; 2 |] |] in
  let levels = Schedule.levels_of_phase s 0 in
  levels.(0) <- 99;
  check_int "internal state unchanged" 1 (Schedule.level s ~phase:0 ~ab:0)

let prop_phase_of_iter_monotone =
  qcheck_case "phase monotone in iteration"
    QCheck.(triple (int_range 1 8) (int_range 1 500) (int_range 0 499))
    (fun (n_phases, expected, iter) ->
      let s = Schedule.uniform ~n_phases [| 0 |] in
      let p1 = Schedule.phase_of_iter s ~expected_iters:expected ~iter in
      let p2 = Schedule.phase_of_iter s ~expected_iters:expected ~iter:(iter + 1) in
      p1 <= p2 && p1 >= 0 && p2 < n_phases)

(* -------------------------------------------------------- Workmeter / Env *)

let test_workmeter () =
  let m = Workmeter.create () in
  Workmeter.add m 5;
  Workmeter.add m 3;
  check_int "total" 8 (Workmeter.total m);
  Workmeter.reset m;
  check_int "reset" 0 (Workmeter.total m)

let test_workmeter_negative () =
  let m = Workmeter.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Workmeter.add: negative work") (fun () ->
      Workmeter.add m (-1))

let make_env ?(n_phases = 2) ?(expected = 10) levels =
  let sched = Schedule.uniform ~n_phases levels in
  Env.create ~rng:(Rng.create 0) ~sched ~expected_iters:expected ~n_abs:(Array.length levels)

let test_env_charging () =
  let env = make_env [| 0; 0 |] in
  let _ = Env.begin_outer_iter env in
  Env.charge env ~ab:0 5;
  Env.charge env ~ab:1 3;
  Env.charge_base env 2;
  check_int "total" 10 (Env.total_work env);
  check_int "ab0" 5 (Env.work_of_ab env 0);
  check_int "ab1" 3 (Env.work_of_ab env 1)

let test_env_trace () =
  let env = make_env [| 0; 0 |] in
  let _ = Env.begin_outer_iter env in
  Env.enter_ab env ~ab:1;
  Env.enter_ab env ~ab:0;
  Alcotest.(check (list int)) "trace order" [ 1; 0 ] (Env.trace env)

let test_env_phase_tracking () =
  let env = make_env ~n_phases:2 ~expected:4 [| 0 |] in
  let _ = Env.begin_outer_iter env in
  check_int "phase 0" 0 (Env.current_phase env);
  let _ = Env.begin_outer_iter env in
  let _ = Env.begin_outer_iter env in
  check_int "phase 1 at iter 2" 1 (Env.current_phase env);
  Env.charge_base env 7;
  check_int "charged to phase 1" 7 (Env.work_per_phase env).(1)

let test_env_level_lookup () =
  let sched = Schedule.single_phase_active ~n_phases:2 ~phase:1 [| 3 |] in
  let env = Env.create ~rng:(Rng.create 0) ~sched ~expected_iters:4 ~n_abs:1 in
  check_int "phase 0 exact" 0 (Env.level env ~iter:0 ~ab:0);
  check_int "phase 1 approximated" 3 (Env.level env ~iter:3 ~ab:0)

(* -------------------------------------------------------------------- Qos *)

let test_distortion_identical () =
  check_float "zero" 0.0 (Qos.relative_distortion ~exact:[| 1.0; 2.0 |] ~approx:[| 1.0; 2.0 |])

let test_distortion_value () =
  (* |1-2| / (1+2) * 100 *)
  check_float_eps 1e-9 "one third" (100.0 /. 3.0)
    (Qos.relative_distortion ~exact:[| 1.0; 2.0 |] ~approx:[| 2.0; 2.0 |])

let test_distortion_nonnegative () =
  check_bool "nonnegative" true
    (Qos.relative_distortion ~exact:[| -1.0; 5.0 |] ~approx:[| 2.0; -3.0 |] >= 0.0)

let test_mse () = check_float "mse" 2.5 (Qos.mse ~exact:[| 0.0; 0.0 |] ~approx:[| 1.0; 2.0 |])

let test_psnr_identical () =
  check_bool "infinite" true (Float.is_integer (Qos.psnr ~exact:[| 1.0 |] ~approx:[| 1.0 |]) = false || Qos.psnr ~exact:[| 1.0 |] ~approx:[| 1.0 |] = infinity)

let test_psnr_value () =
  (* mse = 255^2 => psnr = 0 dB *)
  check_float_eps 1e-9 "0 dB" 0.0 (Qos.psnr ~exact:[| 0.0 |] ~approx:[| 255.0 |])

let test_psnr_mapping_roundtrip () =
  List.iter
    (fun psnr ->
      let d = Qos.psnr_to_degradation psnr in
      check_float_eps 1e-9 "roundtrip" psnr (Qos.degradation_to_psnr d))
    [ 10.0; 20.0; 30.0; 45.0 ]

let test_psnr_mapping_saturates () =
  check_float "lossless" 0.0 (Qos.psnr_to_degradation 55.0);
  check_float "infinity lossless" 0.0 (Qos.psnr_to_degradation infinity)

let test_qos_length_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Qos.mse: length mismatch") (fun () ->
      ignore (Qos.mse ~exact:[| 1.0 |] ~approx:[| 1.0; 2.0 |]))

(* ----------------------------------------------------------- Config_space *)

let two_abs =
  [|
    Ab.make ~name:"a" ~technique:Ab.Perforation ~max_level:2;
    Ab.make ~name:"b" ~technique:Ab.Truncation ~max_level:3;
  |]

let test_space_count () = check_int "3 * 4" 12 (Config_space.count two_abs)

let test_space_all () =
  let all = Config_space.all two_abs in
  check_int "enumerates everything" 12 (List.length all);
  check_int "distinct" 12 (List.length (List.sort_uniq compare all));
  Alcotest.(check (array int)) "zero first" [| 0; 0 |] (List.hd all)

let test_space_local_sweeps () =
  let sweeps = Config_space.local_sweeps two_abs in
  check_int "2 + 3 configurations" 5 (List.length sweeps);
  List.iter
    (fun (ab, config) ->
      check_bool "only one AB active" true
        (Array.for_all Fun.id (Array.mapi (fun i l -> i = ab || l = 0) config));
      check_bool "active level positive" true (config.(ab) > 0))
    sweeps

let test_space_random_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    let c = Config_space.random rng two_abs in
    check_bool "bounded" true (c.(0) <= 2 && c.(1) <= 3 && c.(0) >= 0 && c.(1) >= 0)
  done

let test_space_random_nonzero () =
  let rng = Rng.create 4 in
  for _ = 1 to 50 do
    let c = Config_space.random_nonzero rng two_abs in
    check_bool "not all zero" true (Array.exists (fun l -> l > 0) c)
  done

let test_phase_space_count () =
  check_int "count * phases * inputs" (12 * 4 * 3)
    (Config_space.phase_space_count two_abs ~n_phases:4 ~n_inputs:3)

(* ----------------------------------------------------------------- Inputs *)

module Inputs = Opprox_sim.Inputs

let test_inputs_grid () =
  let g = Inputs.grid [ [ 1.0; 2.0 ]; [ 10.0 ]; [ 0.0; 0.5; 1.0 ] ] in
  check_int "size" 6 (Array.length g);
  Alcotest.(check (array (float 0.0))) "first (row-major)" [| 1.0; 10.0; 0.0 |] g.(0);
  Alcotest.(check (array (float 0.0))) "last" [| 2.0; 10.0; 1.0 |] g.(5)

let test_inputs_grid_invalid () =
  Alcotest.check_raises "no axes" (Invalid_argument "Inputs.grid: no axes") (fun () ->
      ignore (Inputs.grid []));
  Alcotest.check_raises "empty axis" (Invalid_argument "Inputs.grid: empty axis") (fun () ->
      ignore (Inputs.grid [ [ 1.0 ]; [] ]))

let test_inputs_count () =
  check_int "count matches grid" 6 (Inputs.count [ [ 1.0; 2.0 ]; [ 10.0 ]; [ 0.0; 0.5; 1.0 ] ])

let test_inputs_with_default () =
  let g = Inputs.grid [ [ 1.0; 2.0 ] ] in
  check_int "new default appended" 3 (Array.length (Inputs.with_default [| 3.0 |] g));
  check_int "existing default not duplicated" 2 (Array.length (Inputs.with_default [| 2.0 |] g))

let test_apps_default_in_training () =
  (* Every bundled app trains on its default input (model coverage). *)
  List.iter
    (fun (app : App.t) ->
      check_bool (app.App.name ^ " default covered") true
        (Array.exists (fun i -> i = app.App.default_input) app.App.training_inputs))
    (Opprox_apps.Registry.all ())

(* ------------------------------------------------------------ App / Driver *)

let test_app_validation () =
  Alcotest.check_raises "no ABs" (Invalid_argument "App.make: no approximable blocks")
    (fun () ->
      ignore
        (App.make ~name:"bad" ~description:"" ~param_names:[| "p" |] ~abs:[||]
           ~default_input:[| 1.0 |] ~training_inputs:[| [| 1.0 |] |]
           ~run:(fun _ _ -> [| 0.0 |])
           ()))

let test_app_accessors () =
  check_int "n_abs" 2 (App.n_abs toy);
  Alcotest.(check (array int)) "max levels" [| 3; 3 |] (App.max_levels toy);
  Alcotest.(check (array string)) "names" [| "smooth"; "integrate" |] (App.ab_names toy)

let test_driver_exact_run () =
  let exact = Driver.run_exact toy toy.App.default_input in
  check_int "iterations" Fixtures.iterations exact.Driver.iters;
  check_bool "work positive" true (exact.Driver.work > 0);
  check_bool "finite output" true (Array.for_all Float.is_finite exact.Driver.output)

let test_driver_exact_deterministic () =
  Driver.clear_cache ();
  let a = Driver.run_exact toy toy.App.default_input in
  Driver.clear_cache ();
  let b = Driver.run_exact toy toy.App.default_input in
  Alcotest.(check (array (float 0.0))) "identical outputs" a.Driver.output b.Driver.output;
  check_int "identical work" a.Driver.work b.Driver.work

let test_driver_exact_schedule_scores_perfectly () =
  let ev = Driver.evaluate toy (Schedule.exact ~n_abs:2) toy.App.default_input in
  check_float "zero degradation" 0.0 ev.Driver.qos_degradation;
  check_float_eps 1e-9 "unit speedup" 1.0 ev.Driver.speedup

let test_driver_approximation_saves_work () =
  let ev = Driver.evaluate toy (Schedule.uniform ~n_phases:1 [| 3; 3 |]) toy.App.default_input in
  check_bool "speedup above 1" true (ev.Driver.speedup > 1.0);
  check_bool "degradation nonzero" true (ev.Driver.qos_degradation > 0.0)

let test_driver_evaluation_deterministic () =
  let sched = Schedule.uniform ~n_phases:2 [| 2; 1 |] in
  let a = Driver.evaluate toy sched toy.App.default_input in
  let b = Driver.evaluate toy sched toy.App.default_input in
  check_float "same qos" a.Driver.qos_degradation b.Driver.qos_degradation;
  check_float "same speedup" a.Driver.speedup b.Driver.speedup

let test_driver_schedule_mismatch () =
  Alcotest.check_raises "AB count" (Invalid_argument "Driver.evaluate: schedule AB count mismatch")
    (fun () -> ignore (Driver.evaluate toy (Schedule.exact ~n_abs:3) toy.App.default_input))

let test_driver_work_per_phase_sums () =
  let sched = Schedule.uniform ~n_phases:4 [| 0; 0 |] in
  let ev = Driver.evaluate toy sched toy.App.default_input in
  check_int "phase work sums to total" ev.Driver.work
    (Array.fold_left ( + ) 0 ev.Driver.work_per_phase)

let test_driver_seed_differs_by_input () =
  check_bool "different inputs, different seeds" true
    (Driver.seed_for toy [| 1.0 |] <> Driver.seed_for toy [| 2.0 |])

let test_driver_cache_hits () =
  Driver.clear_cache ();
  let a = Driver.run_exact toy toy.App.default_input in
  let b = Driver.run_exact toy toy.App.default_input in
  (* Memoized: the very same record comes back. *)
  check_bool "physically cached" true (a == b)

let test_driver_cache_keyed_by_input () =
  let a = Driver.run_exact toy [| 1.0 |] in
  let b = Driver.run_exact toy [| 2.0 |] in
  check_bool "distinct per input" true (a != b)

let prop_evaluation_speedup_work_consistent =
  qcheck_case ~count:20 "speedup equals exact work over measured work"
    QCheck.(pair (int_range 0 3) (int_range 0 3))
    (fun (l0, l1) ->
      let exact = Driver.run_exact toy toy.App.default_input in
      let ev = Driver.evaluate toy (Schedule.uniform ~n_phases:2 [| l0; l1 |]) toy.App.default_input in
      Float.abs
        (ev.Driver.speedup -. (float_of_int exact.Driver.work /. float_of_int ev.Driver.work))
      < 1e-9)

let prop_toy_speedup_monotone =
  qcheck_case ~count:20 "more aggressive level never does more work"
    QCheck.(pair (int_range 0 2) (int_range 0 2))
    (fun (l0, l1) ->
      let work levels =
        (Driver.evaluate toy (Schedule.uniform ~n_phases:1 levels) toy.App.default_input)
          .Driver.work
      in
      work [| l0 + 1; l1 |] <= work [| l0; l1 |] && work [| l0; l1 + 1 |] <= work [| l0; l1 |])

let suite =
  [
    ( "approx",
      [
        Alcotest.test_case "perforate exact" `Quick test_perforate_exact;
        Alcotest.test_case "perforate stride" `Quick test_perforate_stride;
        Alcotest.test_case "perforate offset" `Quick test_perforate_offset;
        Alcotest.test_case "perforate count" `Quick test_perforate_count;
        Alcotest.test_case "perforate negative" `Quick test_perforate_negative;
        Alcotest.test_case "truncate exact" `Quick test_truncate_exact;
        Alcotest.test_case "truncate half at max" `Quick test_truncate_half_at_max;
        Alcotest.test_case "truncate prefix" `Quick test_truncate_is_prefix;
        Alcotest.test_case "truncate above max" `Quick test_truncate_level_above_max;
        Alcotest.test_case "memoize exact" `Quick test_memoize_exact;
        Alcotest.test_case "memoize replay" `Quick test_memoize_replays_cache;
        Alcotest.test_case "memoize first compute" `Quick test_memoize_always_computes_first;
        Alcotest.test_case "memoize count" `Quick test_memoize_count;
        Alcotest.test_case "tune parameter" `Quick test_tune_parameter;
        prop_perforate_less_work;
        prop_truncate_monotone;
      ] );
    ( "schedule",
      [
        Alcotest.test_case "exact" `Quick test_schedule_exact;
        Alcotest.test_case "uniform" `Quick test_schedule_uniform;
        Alcotest.test_case "single phase" `Quick test_schedule_single_phase;
        Alcotest.test_case "phase_of_iter" `Quick test_schedule_phase_of_iter;
        Alcotest.test_case "overflow to last" `Quick test_schedule_overflow_to_last_phase;
        Alcotest.test_case "unknown iters" `Quick test_schedule_unknown_iters;
        Alcotest.test_case "validation" `Quick test_schedule_make_validation;
        Alcotest.test_case "levels copy" `Quick test_schedule_levels_of_phase_copies;
        prop_phase_of_iter_monotone;
      ] );
    ( "workmeter-env",
      [
        Alcotest.test_case "workmeter" `Quick test_workmeter;
        Alcotest.test_case "workmeter negative" `Quick test_workmeter_negative;
        Alcotest.test_case "env charging" `Quick test_env_charging;
        Alcotest.test_case "env trace" `Quick test_env_trace;
        Alcotest.test_case "env phase tracking" `Quick test_env_phase_tracking;
        Alcotest.test_case "env level lookup" `Quick test_env_level_lookup;
      ] );
    ( "qos",
      [
        Alcotest.test_case "distortion identical" `Quick test_distortion_identical;
        Alcotest.test_case "distortion value" `Quick test_distortion_value;
        Alcotest.test_case "distortion nonnegative" `Quick test_distortion_nonnegative;
        Alcotest.test_case "mse" `Quick test_mse;
        Alcotest.test_case "psnr identical" `Quick test_psnr_identical;
        Alcotest.test_case "psnr value" `Quick test_psnr_value;
        Alcotest.test_case "psnr mapping roundtrip" `Quick test_psnr_mapping_roundtrip;
        Alcotest.test_case "psnr mapping saturates" `Quick test_psnr_mapping_saturates;
        Alcotest.test_case "length mismatch" `Quick test_qos_length_mismatch;
      ] );
    ( "config-space",
      [
        Alcotest.test_case "count" `Quick test_space_count;
        Alcotest.test_case "all" `Quick test_space_all;
        Alcotest.test_case "local sweeps" `Quick test_space_local_sweeps;
        Alcotest.test_case "random bounds" `Quick test_space_random_bounds;
        Alcotest.test_case "random nonzero" `Quick test_space_random_nonzero;
        Alcotest.test_case "phase space count" `Quick test_phase_space_count;
      ] );
    ( "inputs",
      [
        Alcotest.test_case "grid" `Quick test_inputs_grid;
        Alcotest.test_case "grid invalid" `Quick test_inputs_grid_invalid;
        Alcotest.test_case "count" `Quick test_inputs_count;
        Alcotest.test_case "with_default" `Quick test_inputs_with_default;
        Alcotest.test_case "apps cover default" `Quick test_apps_default_in_training;
      ] );
    ( "app-driver",
      [
        Alcotest.test_case "app validation" `Quick test_app_validation;
        Alcotest.test_case "app accessors" `Quick test_app_accessors;
        Alcotest.test_case "exact run" `Quick test_driver_exact_run;
        Alcotest.test_case "exact deterministic" `Quick test_driver_exact_deterministic;
        Alcotest.test_case "exact scores perfectly" `Quick test_driver_exact_schedule_scores_perfectly;
        Alcotest.test_case "approximation saves work" `Quick test_driver_approximation_saves_work;
        Alcotest.test_case "evaluation deterministic" `Quick test_driver_evaluation_deterministic;
        Alcotest.test_case "schedule mismatch" `Quick test_driver_schedule_mismatch;
        Alcotest.test_case "phase work sums" `Quick test_driver_work_per_phase_sums;
        Alcotest.test_case "seed differs by input" `Quick test_driver_seed_differs_by_input;
        Alcotest.test_case "cache hits" `Quick test_driver_cache_hits;
        Alcotest.test_case "cache keyed by input" `Quick test_driver_cache_keyed_by_input;
        prop_evaluation_speedup_work_consistent;
        prop_toy_speedup_monotone;
      ] );
  ]
