(* Unit and property tests for Opprox_util: Rng, Stats, Table. *)

module Rng = Opprox_util.Rng
module Stats = Opprox_util.Stats
module Table = Opprox_util.Table
open Fixtures

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_distinct_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_bool "different seeds diverge" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create 5 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  check_bool "copy continues identically" true (Rng.bits64 a = Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_bool "split streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let r = Rng.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_uniform_range () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.uniform r in
    check_bool "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_uniform_mean () =
  let r = Rng.create 123 in
  let xs = Array.init 10_000 (fun _ -> Rng.uniform r) in
  check_bool "mean near 0.5" true (Float.abs (Stats.mean xs -. 0.5) < 0.02)

let test_rng_range () =
  let r = Rng.create 77 in
  for _ = 1 to 200 do
    let v = Rng.range r (-3.0) 5.0 in
    check_bool "in [-3,5)" true (v >= -3.0 && v < 5.0)
  done

let test_rng_gaussian_moments () =
  let r = Rng.create 1234 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian r) in
  check_bool "mean ~ 0" true (Float.abs (Stats.mean xs) < 0.05);
  check_bool "stddev ~ 1" true (Float.abs (Stats.stddev xs -. 1.0) < 0.05)

let test_rng_gaussian_scaled () =
  let r = Rng.create 55 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian_scaled r ~mean:3.0 ~sigma:0.5) in
  check_bool "mean ~ 3" true (Float.abs (Stats.mean xs -. 3.0) < 0.05);
  check_bool "stddev ~ 0.5" true (Float.abs (Stats.stddev xs -. 0.5) < 0.05)

let test_rng_shuffle_permutation () =
  let r = Rng.create 8 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_choice () =
  let r = Rng.create 14 in
  for _ = 1 to 100 do
    let v = Rng.choice r [| 1; 2; 3 |] in
    check_bool "chosen from array" true (List.mem v [ 1; 2; 3 ])
  done

let test_rng_choice_empty () =
  let r = Rng.create 0 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choice: empty array") (fun () ->
      ignore (Rng.choice r [||]))

let test_sample_without_replacement () =
  let r = Rng.create 21 in
  let s = Rng.sample_without_replacement r 5 10 in
  check_int "length" 5 (List.length s);
  check_int "distinct" 5 (List.length (List.sort_uniq compare s));
  List.iter (fun i -> check_bool "in range" true (i >= 0 && i < 10)) s

let test_sample_all () =
  let r = Rng.create 22 in
  let s = Rng.sample_without_replacement r 10 10 in
  Alcotest.(check (list int)) "all indices" (List.init 10 (fun i -> i)) (List.sort compare s)

let prop_int_in_bounds =
  qcheck_case "rng int stays in bounds" QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

(* ---------------------------------------------------------------- Stats *)

let test_mean () = check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])
let test_sum_empty () = check_float "empty sum" 0.0 (Stats.sum [||])

let test_sum_kahan () =
  (* Adding many tiny values to a large one: naive summation loses them. *)
  let xs = Array.make 10_001 1e-12 in
  xs.(0) <- 1.0;
  check_bool "kahan keeps precision" true (Stats.sum xs > 1.0)

let test_variance () =
  check_float "variance" 1.25 (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |])

let test_stddev_constant () = check_float "constant stddev" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |])
let test_min_max () =
  check_float "min" (-2.0) (Stats.min [| 3.0; -2.0; 7.0 |]);
  check_float "max" 7.0 (Stats.max [| 3.0; -2.0; 7.0 |])

let test_median_odd () = check_float "odd median" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |])
let test_median_even () = check_float "even median" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_quantile_bounds () =
  let xs = [| 5.0; 1.0; 3.0 |] in
  check_float "q0 = min" 1.0 (Stats.quantile xs 0.0);
  check_float "q1 = max" 5.0 (Stats.quantile xs 1.0)

let test_quantile_interpolates () =
  check_float "q0.25 of 0..3" 0.75 (Stats.quantile [| 0.0; 1.0; 2.0; 3.0 |] 0.25)

let test_quantile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  let _ = Stats.quantile xs 0.5 in
  Alcotest.(check (array (float 0.0))) "unchanged" [| 3.0; 1.0; 2.0 |] xs

let test_quantile_invalid () =
  Alcotest.check_raises "p > 1" (Invalid_argument "Stats.quantile: p outside [0,1]") (fun () ->
      ignore (Stats.quantile [| 1.0 |] 1.5))

let test_pearson_perfect () =
  check_float_eps 1e-9 "correlated" 1.0 (Stats.pearson [| 1.0; 2.0; 3.0 |] [| 2.0; 4.0; 6.0 |])

let test_pearson_anticorrelated () =
  check_float_eps 1e-9 "anti" (-1.0) (Stats.pearson [| 1.0; 2.0; 3.0 |] [| 3.0; 2.0; 1.0 |])

let test_pearson_constant () =
  check_float "zero-variance side" 0.0 (Stats.pearson [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |])

let test_r2_perfect () =
  check_float "perfect" 1.0
    (Stats.r2_score ~actual:[| 1.0; 2.0; 3.0 |] ~predicted:[| 1.0; 2.0; 3.0 |])

let test_r2_mean_prediction () =
  check_float "mean predictor scores 0" 0.0
    (Stats.r2_score ~actual:[| 1.0; 2.0; 3.0 |] ~predicted:[| 2.0; 2.0; 2.0 |])

let test_r2_constant_actual () =
  check_float "constant actual, exact prediction" 1.0
    (Stats.r2_score ~actual:[| 2.0; 2.0 |] ~predicted:[| 2.0; 2.0 |]);
  check_float "constant actual, wrong prediction" 0.0
    (Stats.r2_score ~actual:[| 2.0; 2.0 |] ~predicted:[| 1.0; 2.0 |])

let test_mae () =
  check_float "mae" 0.5 (Stats.mae ~actual:[| 1.0; 2.0 |] ~predicted:[| 1.5; 2.5 |])

let test_rmse () =
  check_float "rmse" 2.0 (Stats.rmse ~actual:[| 0.0; 0.0 |] ~predicted:[| 2.0; -2.0 |])

let test_geometric_mean () = check_float "geo mean" 2.0 (Stats.geometric_mean [| 1.0; 4.0 |])

let test_geometric_mean_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Stats.geometric_mean: non-positive value")
    (fun () -> ignore (Stats.geometric_mean [| 1.0; -1.0 |]))

let test_normalize () =
  Alcotest.(check (array (float 1e-9))) "sums to one" [| 0.25; 0.75 |]
    (Stats.normalize [| 1.0; 3.0 |])

let test_normalize_zero () =
  Alcotest.(check (array (float 1e-9))) "uniform when all-zero" [| 0.5; 0.5 |]
    (Stats.normalize [| 0.0; 0.0 |])

let test_empty_raises () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Stats.mean [||]))

let prop_quantile_monotone =
  qcheck_case "quantile monotone in p"
    QCheck.(pair (array_of_size (QCheck.Gen.int_range 1 30) (float_range (-100.) 100.))
              (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.quantile xs lo <= Stats.quantile xs hi +. 1e-9)

let prop_median_is_middle_quantile =
  qcheck_case "median = quantile 0.5"
    QCheck.(array_of_size (QCheck.Gen.int_range 1 30) (float_range (-50.) 50.))
    (fun xs -> Float.abs (Stats.median xs -. Stats.quantile xs 0.5) < 1e-9)

let prop_normalize_sums_to_one =
  qcheck_case "normalize sums to 1"
    QCheck.(array_of_size (QCheck.Gen.int_range 1 20) (float_range 0. 100.))
    (fun xs -> Float.abs (Stats.sum (Stats.normalize xs) -. 1.0) < 1e-9)

(* ---------------------------------------------------------------- Table *)

let test_table_basic () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "bb"; "22" ];
  let rendered = Table.render t in
  check_bool "contains header" true (String.length rendered > 0);
  let lines = String.split_on_char '\n' rendered in
  check_int "header + sep + 2 rows + trailing" 5 (List.length lines)

let test_table_width_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "row width" (Invalid_argument "Table.add_row: row width mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_alignment () =
  let t = Table.create [ "k"; "v" ] in
  Table.add_row t [ "x"; "1" ];
  let line = List.nth (String.split_on_char '\n' (Table.render t)) 2 in
  check_bool "value right-aligned" true (String.length line >= 4)

let test_fmt_float () =
  Alcotest.(check string) "integer" "3" (Table.fmt_float 3.0);
  Alcotest.(check string) "fraction" "3.1400" (Table.fmt_float 3.14)

let test_to_csv () =
  let t = Table.create [ "name"; "note" ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_row t [ "has,comma"; "quote\"inside" ];
  let csv = Table.to_csv t in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "header" "name,note" (List.nth lines 0);
  Alcotest.(check string) "plain row" "plain,1" (List.nth lines 1);
  Alcotest.(check string) "quoted row" "\"has,comma\",\"quote\"\"inside\"" (List.nth lines 2)

let test_float_row () =
  let t = Table.create [ "k"; "a"; "b" ] in
  Table.add_float_row t "row" [ 1.0; 2.5 ];
  check_bool "renders" true (String.length (Table.render t) > 0)

(* ----------------------------------------------------------------- Plot *)

module Plot = Opprox_util.Plot

let test_plot_empty () =
  Alcotest.(check string) "no points, no plot" "" (Plot.render [ Plot.series "s" [||] ])

let test_plot_nonfinite_filtered () =
  Alcotest.(check string) "only nan points" ""
    (Plot.render [ Plot.series "s" [| (Float.nan, 1.0); (1.0, Float.infinity) |] ])

let test_plot_contains_glyphs () =
  let rendered =
    Plot.render ~width:20 ~height:5
      [ Plot.series ~glyph:'o' "a" [| (0.0, 0.0); (1.0, 1.0) |] ]
  in
  check_bool "glyph present" true (String.contains rendered 'o');
  check_bool "legend present" true
    (String.length rendered > 0
    &&
    let lines = String.split_on_char '\n' rendered in
    List.exists (fun l -> l = "  o = a") lines)

let test_plot_dimensions () =
  let rendered = Plot.render ~width:30 ~height:7 [ Plot.series "s" [| (0.0, 0.0); (2.0, 3.0) |] ] in
  let lines = String.split_on_char '\n' rendered in
  (* 7 grid rows + axis + tick labels + x label-less + legend *)
  check_bool "at least 9 lines" true (List.length lines >= 9)

let test_plot_collision_marker () =
  (* Two series on the same cell render '?'. *)
  let rendered =
    Plot.render ~width:10 ~height:3
      [
        Plot.series ~glyph:'o' "a" [| (0.0, 0.0); (1.0, 1.0) |];
        Plot.series ~glyph:'x' "b" [| (0.0, 0.0) |];
      ]
  in
  check_bool "collision marked" true (String.contains rendered '?')

let test_plot_degenerate_range () =
  (* All points identical: padding keeps the range non-empty. *)
  let rendered = Plot.render [ Plot.series "s" [| (2.0, 2.0); (2.0, 2.0) |] ] in
  check_bool "renders" true (String.length rendered > 0)

let test_auto_glyphs () =
  let ss = Plot.auto_glyphs [ [| (0.0, 0.0) |]; [| (1.0, 1.0) |] ] [ "a"; "b" ] in
  match ss with
  | [ a; b ] ->
      check_bool "distinct glyphs" true (a.Plot.glyph <> b.Plot.glyph)
  | _ -> Alcotest.fail "expected two series"

let prop_csv_roundtrip_cells =
  (* Every CSV line has exactly the header's column count when cells are
     quoted correctly (no embedded newlines in this property's inputs). *)
  qcheck_case "csv keeps column count"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 5) (string_gen_of_size (QCheck.Gen.int_range 0 8) QCheck.Gen.printable))
    (fun cells ->
      let cells = List.map (String.map (fun c -> if c = '\n' || c = '\r' then '_' else c)) cells in
      let t = Table.create (List.map (fun _ -> "h") cells) in
      Table.add_row t cells;
      let csv = Table.to_csv t in
      (* count unquoted commas on the data line *)
      let lines = String.split_on_char '\n' csv in
      let data = List.nth lines 1 in
      let commas = ref 0 and in_quotes = ref false in
      String.iter
        (fun c ->
          if c = '"' then in_quotes := not !in_quotes
          else if c = ',' && not !in_quotes then incr commas)
        data;
      !commas = List.length cells - 1)

let suite =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "distinct seeds" `Quick test_rng_distinct_seeds;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
        Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
        Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
        Alcotest.test_case "range" `Quick test_rng_range;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "gaussian scaled" `Quick test_rng_gaussian_scaled;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "choice" `Quick test_rng_choice;
        Alcotest.test_case "choice empty" `Quick test_rng_choice_empty;
        Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
        Alcotest.test_case "sample all" `Quick test_sample_all;
        prop_int_in_bounds;
      ] );
    ( "stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "sum empty" `Quick test_sum_empty;
        Alcotest.test_case "kahan sum" `Quick test_sum_kahan;
        Alcotest.test_case "variance" `Quick test_variance;
        Alcotest.test_case "stddev constant" `Quick test_stddev_constant;
        Alcotest.test_case "min max" `Quick test_min_max;
        Alcotest.test_case "median odd" `Quick test_median_odd;
        Alcotest.test_case "median even" `Quick test_median_even;
        Alcotest.test_case "quantile bounds" `Quick test_quantile_bounds;
        Alcotest.test_case "quantile interpolates" `Quick test_quantile_interpolates;
        Alcotest.test_case "quantile pure" `Quick test_quantile_does_not_mutate;
        Alcotest.test_case "quantile invalid" `Quick test_quantile_invalid;
        Alcotest.test_case "pearson perfect" `Quick test_pearson_perfect;
        Alcotest.test_case "pearson anti" `Quick test_pearson_anticorrelated;
        Alcotest.test_case "pearson constant" `Quick test_pearson_constant;
        Alcotest.test_case "r2 perfect" `Quick test_r2_perfect;
        Alcotest.test_case "r2 mean predictor" `Quick test_r2_mean_prediction;
        Alcotest.test_case "r2 constant actual" `Quick test_r2_constant_actual;
        Alcotest.test_case "mae" `Quick test_mae;
        Alcotest.test_case "rmse" `Quick test_rmse;
        Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
        Alcotest.test_case "geometric mean negative" `Quick test_geometric_mean_negative;
        Alcotest.test_case "normalize" `Quick test_normalize;
        Alcotest.test_case "normalize zero" `Quick test_normalize_zero;
        Alcotest.test_case "empty raises" `Quick test_empty_raises;
        prop_quantile_monotone;
        prop_median_is_middle_quantile;
        prop_normalize_sums_to_one;
      ] );
    ( "table",
      [
        Alcotest.test_case "basic" `Quick test_table_basic;
        Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
        Alcotest.test_case "alignment" `Quick test_table_alignment;
        Alcotest.test_case "fmt_float" `Quick test_fmt_float;
        Alcotest.test_case "float row" `Quick test_float_row;
        Alcotest.test_case "to_csv" `Quick test_to_csv;
        prop_csv_roundtrip_cells;
      ] );
    ( "plot",
      [
        Alcotest.test_case "empty" `Quick test_plot_empty;
        Alcotest.test_case "non-finite filtered" `Quick test_plot_nonfinite_filtered;
        Alcotest.test_case "contains glyphs" `Quick test_plot_contains_glyphs;
        Alcotest.test_case "dimensions" `Quick test_plot_dimensions;
        Alcotest.test_case "collision marker" `Quick test_plot_collision_marker;
        Alcotest.test_case "degenerate range" `Quick test_plot_degenerate_range;
        Alcotest.test_case "auto glyphs" `Quick test_auto_glyphs;
      ] );
  ]
